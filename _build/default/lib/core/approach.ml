type receive_path =
  | Receive_local
  | Receive_tunnel

type send_path =
  | Send_local
  | Send_tunnel

type t = { send : send_path; receive : receive_path }

let local_membership = { send = Send_local; receive = Receive_local }
let bidirectional_tunnel = { send = Send_tunnel; receive = Receive_tunnel }
let tunnel_to_home_agent = { send = Send_tunnel; receive = Receive_local }
let tunnel_from_home_agent = { send = Send_local; receive = Receive_tunnel }

let all =
  [ local_membership; bidirectional_tunnel; tunnel_to_home_agent; tunnel_from_home_agent ]

let number t =
  match (t.send, t.receive) with
  | Send_local, Receive_local -> 1
  | Send_tunnel, Receive_tunnel -> 2
  | Send_tunnel, Receive_local -> 3
  | Send_local, Receive_tunnel -> 4

let name t =
  match number t with
  | 1 -> "local group membership"
  | 2 -> "bi-directional tunnel"
  | 3 -> "uni-directional tunnel MH->HA"
  | _ -> "uni-directional tunnel HA->MH"

let of_number = function
  | 1 -> local_membership
  | 2 -> bidirectional_tunnel
  | 3 -> tunnel_to_home_agent
  | 4 -> tunnel_from_home_agent
  | n -> invalid_arg (Printf.sprintf "Approach.of_number: %d outside 1-4" n)

let equal a b = a.send = b.send && a.receive = b.receive

let pp ppf t = Format.fprintf ppf "approach %d (%s)" (number t) (name t)
