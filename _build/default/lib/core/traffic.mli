(** Traffic generation helpers shared by experiments, benches and
    examples. *)

type handle

val cbr :
  Scenario.t ->
  Host_stack.t ->
  group:Ipv6.Addr.t ->
  from_t:Engine.Time.t ->
  until:Engine.Time.t ->
  interval:Engine.Time.t ->
  bytes:int ->
  handle
(** Constant-bit-rate multicast source: one [bytes]-byte datagram every
    [interval] from [from_t] (exclusive at [until]). *)

val poisson :
  Scenario.t ->
  Host_stack.t ->
  group:Ipv6.Addr.t ->
  rng:Engine.Rng.t ->
  from_t:Engine.Time.t ->
  until:Engine.Time.t ->
  mean_interval:Engine.Time.t ->
  bytes:int ->
  handle
(** Poisson arrivals with exponential inter-departure times. *)

val stop : handle -> unit

val at : Scenario.t -> Engine.Time.t -> (unit -> unit) -> unit
(** Schedule a scenario event (a movement, a subscription change). *)
