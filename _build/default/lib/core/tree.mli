(** Extraction and rendering of multicast distribution trees from the
    routers' PIM-DM state — used to reproduce the tree drawings of the
    paper's Figures 1-4. *)

open Ipv6

(** One replication decision at a router. *)
type edge = {
  router : string;
  in_via : string;  (** link name of the incoming interface *)
  out_via : string;  (** link name, or ["tunnel:<home-address>"] *)
}

val forwarding_edges : Scenario.t -> source:Addr.t -> group:Addr.t -> edge list
(** Every (router, iif, oif) triple that currently forwards the (S,G)
    pair, sorted by router then out link. *)

val links_carrying : Scenario.t -> source:Addr.t -> group:Addr.t -> string list
(** Names of links the tree delivers onto: the source's own link plus
    every forwarding out-link (tunnels excluded), deduplicated and
    sorted. *)

val tunnels_carrying : Scenario.t -> source:Addr.t -> group:Addr.t -> string list
(** Home addresses of mobile hosts currently served through a
    home-agent tunnel for this (S,G). *)

val pp : Format.formatter -> edge list -> unit

val render : Scenario.t -> source:Addr.t -> group:Addr.t -> string
(** Multi-line description: one line per forwarding router plus a
    summary of links covered. *)
