(** The paper's four approaches to multicast for mobile hosts
    (Table 1): the cartesian product of how a mobile host {e sends}
    multicast datagrams and how it {e receives} them. *)

type receive_path =
  | Receive_local  (** join via the local multicast router on the foreign link *)
  | Receive_tunnel  (** home agent subscribes on the host's behalf and tunnels *)

type send_path =
  | Send_local  (** send on the foreign link with the care-of address *)
  | Send_tunnel  (** reverse-tunnel to the home agent, home address inside *)

type t = { send : send_path; receive : receive_path }

val local_membership : t
(** Approach 1: local group membership on the foreign link. *)

val bidirectional_tunnel : t
(** Approach 2: bi-directional tunnel between home agent and host. *)

val tunnel_to_home_agent : t
(** Approach 3: uni-directional tunnel MH→HA; receive locally. *)

val tunnel_from_home_agent : t
(** Approach 4: uni-directional tunnel HA→MH; send locally. *)

val all : t list
(** In the paper's order 1-4. *)

val number : t -> int
val name : t -> string
val of_number : int -> t
(** @raise Invalid_argument outside 1-4. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
