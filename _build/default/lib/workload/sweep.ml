let over values ~f = List.map (fun v -> (v, f v)) values

let repeated ~trials ~f =
  if trials <= 0 then invalid_arg "Sweep.repeated: trials must be positive";
  let samples = List.init trials (fun trial -> f ~trial) in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int trials in
  let mn = List.fold_left Float.min infinity samples in
  let mx = List.fold_left Float.max neg_infinity samples in
  (mean, mn, mx)

let geometric ~lo ~hi ~steps =
  if steps < 2 then [ lo ]
  else if lo <= 0.0 then invalid_arg "Sweep.geometric: lo must be positive"
  else
    let ratio = (hi /. lo) ** (1.0 /. float_of_int (steps - 1)) in
    List.init steps (fun i -> lo *. (ratio ** float_of_int i))

let linear ~lo ~hi ~steps =
  if steps < 2 then [ lo ]
  else
    let step = (hi -. lo) /. float_of_int (steps - 1) in
    List.init steps (fun i -> lo +. (float_of_int i *. step))
