(** Random topology generation for stress tests and scaling
    experiments beyond the paper's six-link reference network. *)

val random_tree :
  ?seed:int ->
  ?spec:Mmcast.Scenario.spec ->
  routers:int ->
  hosts:int ->
  unit ->
  Mmcast.Scenario.t
(** A random router tree: router 0 is the root; router [i] attaches to
    the backbone link of a uniformly chosen earlier router.  Each
    router also owns a stub link (its home-agent link); every host is
    homed on a uniformly chosen stub link.  Hosts are named ["H0"],
    ["H1"], ...; routers ["N0"]...; stub links ["S0"]...; backbone
    links ["B0"]....
    @raise Invalid_argument if [routers < 1] or [hosts < 0]. *)

val random_mesh :
  ?seed:int ->
  ?spec:Mmcast.Scenario.spec ->
  routers:int ->
  extra_links:int ->
  hosts:int ->
  unit ->
  Mmcast.Scenario.t
(** Like {!random_tree} but with [extra_links] additional cross links,
    each joining two distinct random routers — redundancy that
    exercises the Assert election. *)
