lib/workload/topo_gen.mli: Mmcast
