lib/workload/topo_gen.ml: Array Engine List Mmcast Printf
