lib/workload/mobility.ml: Array Engine Ids List Mmcast Net Network Topology
