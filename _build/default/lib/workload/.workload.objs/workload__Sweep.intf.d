lib/workload/sweep.mli:
