lib/workload/sweep.ml: Float List
