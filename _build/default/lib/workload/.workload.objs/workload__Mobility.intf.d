lib/workload/mobility.mli: Engine Ids Mmcast Net
