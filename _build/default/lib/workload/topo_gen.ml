module Scenario = Mmcast.Scenario

let stub_prefix i = Printf.sprintf "2001:db8:100:%x::/64" i
let backbone_prefix i = Printf.sprintf "2001:db8:200:%x::/64" i
let cross_prefix i = Printf.sprintf "2001:db8:300:%x::/64" i

let build ?(seed = 7) ?(spec = Scenario.default_spec) ~routers ~cross ~hosts () =
  if routers < 1 then invalid_arg "Topo_gen: need at least one router";
  if hosts < 0 then invalid_arg "Topo_gen: negative host count";
  let rng = Engine.Rng.create seed in
  (* Stub link per router, backbone link per non-root router. *)
  let stub i = Printf.sprintf "S%d" i in
  let backbone i = Printf.sprintf "B%d" i in
  let links =
    List.init routers (fun i -> (stub i, stub_prefix i))
    @ List.init (max 0 (routers - 1)) (fun i -> (backbone i, backbone_prefix i))
    @ List.init cross (fun i -> (Printf.sprintf "X%d" i, cross_prefix i))
  in
  (* Router i > 0 hangs off the backbone link owned by a random earlier
     router; the owner is attached to it too. *)
  let attachments = Array.make routers [] in
  for i = 0 to routers - 1 do
    attachments.(i) <- [ stub i ]
  done;
  for i = 1 to routers - 1 do
    let parent = Engine.Rng.int rng i in
    attachments.(i) <- backbone (i - 1) :: attachments.(i);
    attachments.(parent) <- backbone (i - 1) :: attachments.(parent)
  done;
  for x = 0 to cross - 1 do
    if routers >= 2 then begin
      let a = Engine.Rng.int rng routers in
      let b = (a + 1 + Engine.Rng.int rng (routers - 1)) mod routers in
      let name = Printf.sprintf "X%d" x in
      attachments.(a) <- name :: attachments.(a);
      attachments.(b) <- name :: attachments.(b)
    end
  done;
  let router_specs =
    List.init routers (fun i ->
        (Printf.sprintf "N%d" i, List.rev attachments.(i), [ stub i ]))
  in
  let host_specs =
    List.init hosts (fun h ->
        (Printf.sprintf "H%d" h, stub (Engine.Rng.int rng routers)))
  in
  Scenario.build spec ~links ~routers:router_specs ~hosts:host_specs

let random_tree ?seed ?spec ~routers ~hosts () = build ?seed ?spec ~routers ~cross:0 ~hosts ()

let random_mesh ?seed ?spec ~routers ~extra_links ~hosts () =
  build ?seed ?spec ~routers ~cross:extra_links ~hosts ()
