(** Mobility models driving mobile-host handoffs. *)

open Net

val script : Mmcast.Scenario.t -> Mmcast.Host_stack.t -> (Engine.Time.t * string) list -> unit
(** [script scenario host moves] schedules each [(time, link_name)]
    handoff. *)

type random_walk = {
  mutable walk_moves : int;  (** handoffs performed so far *)
}

val random_walk :
  Mmcast.Scenario.t ->
  Mmcast.Host_stack.t ->
  rng:Engine.Rng.t ->
  links:string list ->
  dwell_mean:Engine.Time.t ->
  from_t:Engine.Time.t ->
  until:Engine.Time.t ->
  random_walk
(** The host dwells an Exp(dwell_mean)-distributed time on each link,
    then hops to a uniformly chosen different link of [links].  This is
    the "highly mobile host" regime of the paper's conclusions. *)

val round_robin :
  Mmcast.Scenario.t ->
  Mmcast.Host_stack.t ->
  links:string list ->
  period:Engine.Time.t ->
  from_t:Engine.Time.t ->
  until:Engine.Time.t ->
  unit
(** Deterministic cycling through [links] every [period]. *)

val links_of : Mmcast.Scenario.t -> Mmcast.Host_stack.t -> string list
(** Names of all links of the scenario's topology except the host's
    current link — convenient candidates for a walk. *)

val link_by_name : Mmcast.Scenario.t -> string -> Ids.Link_id.t
