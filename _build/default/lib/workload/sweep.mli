(** Parameter-sweep scaffolding for experiments. *)

val over : 'a list -> f:('a -> 'b) -> ('a * 'b) list
(** Run [f] for every parameter value, pairing inputs with results. *)

val repeated : trials:int -> f:(trial:int -> float) -> float * float * float
(** [repeated ~trials ~f] runs [f] for trials 0..n-1 and returns
    (mean, min, max). *)

val geometric : lo:float -> hi:float -> steps:int -> float list
(** Geometrically spaced values from [lo] to [hi] inclusive. *)

val linear : lo:float -> hi:float -> steps:int -> float list
