module Node_id = Ids.Node_id
module Link_id = Ids.Link_id

type decision =
  | Deliver_on_link of Link_id.t
  | Forward of { out_link : Link_id.t; next_hop : Node_id.t }
  | Unreachable

(* Per-source BFS result: for every reachable link, its hop distance
   and how it was discovered (previous link + the router joining them). *)
type link_route = {
  dist : int;
  via : (Link_id.t * Node_id.t) option;  (* None for directly attached links *)
}

type table = link_route Link_id.Map.t

type t = {
  topology : Topology.t;
  mutable cache_version : int;
  cache : (Node_id.t, table) Hashtbl.t;
}

let create topology =
  { topology; cache_version = Topology.version topology; cache = Hashtbl.create 32 }

let compute_table topo ~from =
  let queue = Queue.create () in
  let table = ref Link_id.Map.empty in
  let discover link route =
    if not (Link_id.Map.mem link !table) then begin
      table := Link_id.Map.add link route !table;
      Queue.add link queue
    end
  in
  List.iter (fun l -> discover l { dist = 0; via = None }) (Topology.links_of_node topo from);
  while not (Queue.is_empty queue) do
    let current = Queue.pop queue in
    let { dist; _ } = Link_id.Map.find current !table in
    (* Only routers forward between links, and the deciding node itself
       is not a transit hop. *)
    let transit =
      List.filter
        (fun r -> not (Node_id.equal r from))
        (Topology.routers_on_link topo current)
    in
    List.iter
      (fun router ->
        List.iter
          (fun next ->
            if not (Link_id.equal next current) then
              discover next { dist = dist + 1; via = Some (current, router) })
          (Topology.links_of_node topo router))
      transit
  done;
  !table

let table t ~from =
  let version = Topology.version t.topology in
  if version <> t.cache_version then begin
    Hashtbl.reset t.cache;
    t.cache_version <- version
  end;
  match Hashtbl.find_opt t.cache from with
  | Some table -> table
  | None ->
    let computed = compute_table t.topology ~from in
    Hashtbl.add t.cache from computed;
    computed

let rec trace_path table link acc =
  match Link_id.Map.find_opt link table with
  | None -> None
  | Some { via = None; _ } -> Some acc
  | Some { via = Some (prev, router); _ } -> trace_path table prev ((link, router) :: acc)

let distance_to_link t ~from link =
  match Link_id.Map.find_opt link (table t ~from) with
  | None -> None
  | Some { dist; _ } -> Some dist

let path_to_link t ~from link =
  let tbl = table t ~from in
  match Link_id.Map.find_opt link tbl with
  | None -> None
  | Some { via = None; _ } -> Some []
  | Some _ -> (
    (* [steps] pairs each traversed link with the router entering it;
       the first step's predecessor is the attached link the path
       leaves through. *)
    match trace_path tbl link [] with
    | None | Some [] -> None
    | Some ((first_traversed, _) :: _ as steps) ->
      let start =
        match Link_id.Map.find_opt first_traversed tbl with
        | Some { via = Some (prev, _); _ } -> prev
        | Some { via = None; _ } | None -> first_traversed
      in
      Some (start :: List.map fst steps))

let decide t ~at ~dst =
  match Topology.link_of_address t.topology dst with
  | None -> Unreachable
  | Some dst_link ->
    if Topology.is_attached t.topology at dst_link then Deliver_on_link dst_link
    else
      let tbl = table t ~from:at in
      match trace_path tbl dst_link [] with
      | None | Some [] -> Unreachable
      | Some ((first_traversed, first_router) :: _) ->
        let out_link =
          match Link_id.Map.find_opt first_traversed tbl with
          | Some { via = Some (prev, _); _ } -> prev
          | Some { via = None; _ } | None -> first_traversed
        in
        Forward { out_link; next_hop = first_router }

let rpf t ~at ~source =
  match decide t ~at ~dst:source with
  | Deliver_on_link l -> Some (l, None)
  | Forward { out_link; next_hop } -> Some (out_link, Some next_hop)
  | Unreachable -> None
