module type ID = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Make (P : sig
  val prefix : string
end) : ID = struct
  type t = int

  let of_int i = i
  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash = Hashtbl.hash
  let pp ppf i = Format.fprintf ppf "%s%d" P.prefix i

  module Map = Map.Make (Int)
  module Set = Set.Make (Int)
end

module Node_id = Make (struct
  let prefix = "n"
end)

module Link_id = Make (struct
  let prefix = "l"
end)
