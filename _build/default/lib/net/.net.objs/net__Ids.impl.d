lib/net/ids.ml: Format Hashtbl Int Map Set
