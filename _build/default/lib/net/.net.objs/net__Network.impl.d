lib/net/network.ml: Addr Engine Hashtbl Ids Ipv6 List Option Packet Routing Topology
