lib/net/routing.ml: Hashtbl Ids List Queue Topology
