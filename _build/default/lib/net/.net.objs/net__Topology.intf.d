lib/net/topology.mli: Addr Engine Ids Ipv6 Prefix
