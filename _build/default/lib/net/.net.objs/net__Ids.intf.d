lib/net/ids.mli: Format Map Set
