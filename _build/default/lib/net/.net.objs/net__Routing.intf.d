lib/net/routing.mli: Addr Ids Ipv6 Topology
