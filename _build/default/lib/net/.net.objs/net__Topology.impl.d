lib/net/topology.ml: Addr Engine Format Ids Int64 Ipv6 List Prefix Printf String
