lib/net/network.mli: Addr Engine Ids Ipv6 Packet Routing Topology
