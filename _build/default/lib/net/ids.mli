(** Opaque node and link identifiers. *)

module type ID = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Node_id : ID
module Link_id : ID
