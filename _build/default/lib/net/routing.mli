(** Unicast routing.

    Shortest-path (hop count) routes computed over the router graph,
    giving every node a route to every link prefix — the behaviour of an
    intra-domain IGP.  Routes target {e links}, never hosts: a mobile
    host's home address keeps routing to its home link wherever the host
    is, which is exactly the property Mobile IPv6 exists to work
    around.

    Tables are cached and recomputed lazily when the topology version
    changes.  Only routers forward, so paths traverse router nodes; a
    host reaches off-link destinations through a router on its link. *)

open Ipv6

type t

(** Result of a forwarding decision at a node. *)
type decision =
  | Deliver_on_link of Ids.Link_id.t
      (** Destination's link is directly attached: deliver locally. *)
  | Forward of { out_link : Ids.Link_id.t; next_hop : Ids.Node_id.t }
      (** Send out [out_link] to the given router. *)
  | Unreachable

val create : Topology.t -> t

val decide : t -> at:Ids.Node_id.t -> dst:Addr.t -> decision

val distance_to_link : t -> from:Ids.Node_id.t -> Ids.Link_id.t -> int option
(** Number of links traversed to reach the link (0 when attached). *)

val path_to_link : t -> from:Ids.Node_id.t -> Ids.Link_id.t -> Ids.Link_id.t list option
(** The link-level path, starting with the first out-link and ending
    with the destination link; [Some []] when already attached. *)

val rpf : t -> at:Ids.Node_id.t -> source:Addr.t ->
  (Ids.Link_id.t * Ids.Node_id.t option) option
(** PIM-DM reverse-path check: the interface this node uses to reach
    [source] and the upstream router on it ([None] when the source's
    link is directly attached). *)
