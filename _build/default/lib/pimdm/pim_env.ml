open Ipv6

type iface = int

type rpf_result = {
  rpf_iface : iface;
  upstream : Addr.t option;
  metric : int;
}

type t = {
  sim : Engine.Sim.t;
  trace : Engine.Trace.t;
  rng : Engine.Rng.t;
  config : Pim_config.t;
  label : string;
  interfaces : unit -> iface list;
  local_address : iface -> Addr.t;
  send_message : iface -> Pim_message.t -> unit;
  forward_data : iface -> Packet.t -> unit;
  rpf : source:Addr.t -> rpf_result option;
  has_local_members : iface -> Addr.t -> bool;
  flood_eligible : iface -> bool;
}

let trace t fmt =
  Engine.Trace.recordf t.trace ~category:"pim" ("%s: " ^^ fmt) t.label
