(** Execution environment of a PIM-DM router.

    Interfaces are small integers assigned by the node stack (they map
    1:1 to the links the router is attached to).  All interaction with
    the outside — transmitting messages, forwarding data packets,
    unicast routing lookups, MLD membership — goes through these
    callbacks, keeping the state machine testable in isolation. *)

open Ipv6

type iface = int

type rpf_result = {
  rpf_iface : iface;
  upstream : Addr.t option;
      (** Link-local address of the next router toward the source;
          [None] when the source's subnet is directly attached. *)
  metric : int;  (** Unicast distance to the source, for Asserts. *)
}

type t = {
  sim : Engine.Sim.t;
  trace : Engine.Trace.t;
  rng : Engine.Rng.t;
  config : Pim_config.t;
  label : string;
  interfaces : unit -> iface list;
  local_address : iface -> Addr.t;
      (** This router's link-local address on an interface. *)
  send_message : iface -> Pim_message.t -> unit;
      (** Emit a PIM control message on an interface (link scope, to
          all PIM routers). *)
  forward_data : iface -> Packet.t -> unit;
      (** Replicate a multicast data packet onto an interface. *)
  rpf : source:Addr.t -> rpf_result option;
  has_local_members : iface -> Addr.t -> bool;
      (** MLD listener database lookup. *)
  flood_eligible : iface -> bool;
      (** Whether {!Pim_config.t.flood_to_leaf_links} applies to this
          interface.  Physical links say true; virtual tunnel
          interfaces towards mobile nodes say false, so the initial
          flood never enters a tunnel whose mobile node is not
          subscribed. *)
}

val trace : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
