lib/pimdm/pim_env.ml: Addr Engine Ipv6 Packet Pim_config Pim_message
