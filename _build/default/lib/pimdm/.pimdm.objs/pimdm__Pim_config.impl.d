lib/pimdm/pim_config.ml: Engine Format
