lib/pimdm/pim_env.mli: Addr Engine Format Ipv6 Packet Pim_config Pim_message
