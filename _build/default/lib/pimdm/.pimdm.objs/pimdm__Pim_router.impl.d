lib/pimdm/pim_router.ml: Addr Engine Hashtbl Int Ipv6 Lazy List Packet Pim_config Pim_env Pim_message Printf
