lib/pimdm/pim_router.mli: Addr Ipv6 Packet Pim_env Pim_message
