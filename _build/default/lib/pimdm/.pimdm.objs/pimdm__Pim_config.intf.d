lib/pimdm/pim_config.mli: Engine Format
