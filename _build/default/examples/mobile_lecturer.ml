(* A lecturer multicasts slides/audio from a laptop while walking
   between rooms (links).  This is the paper's mobile-sender problem:
   with local sending every room change makes PIM-DM build a brand-new
   source-rooted tree (flooding the whole network) and abandons the old
   one; with a reverse tunnel to the home agent the tree never moves.

   Run with: dune exec examples/mobile_lecturer.exe *)

open Mmcast

let group = Scenario.group

let run approach ~rooms =
  let spec = { Scenario.default_spec with Scenario.approach } in
  let scenario = Scenario.paper_figure1 spec in
  let metrics = Metrics.attach scenario.Scenario.net in
  let lecturer = Scenario.host scenario "S" in
  Traffic.at scenario 5.0 (fun () -> Scenario.subscribe_receivers scenario group);
  ignore
    (Traffic.cbr scenario lecturer ~group ~from_t:30.0 ~until:330.0 ~interval:0.25
       ~bytes:800);
  Workload.Mobility.script scenario lecturer rooms;
  Scenario.run_until scenario 360.0;
  let audience_rx =
    List.map
      (fun name -> Host_stack.received_count (Scenario.host scenario name) ~group)
      [ "R1"; "R2"; "R3" ]
  in
  let sg_states =
    List.fold_left
      (fun acc (_, r) -> acc + List.length (Pimdm.Pim_router.entries (Router_stack.pim r)))
      0 scenario.Scenario.routers
  in
  let counts = Metrics.control_counts metrics in
  (audience_rx, sg_states, counts.Metrics.asserts, counts.Metrics.grafts,
   Metrics.bytes metrics Metrics.Tunnel_overhead,
   Host_stack.data_sent lecturer)

let () =
  let rooms = [ (90.0, "L2"); (180.0, "L6"); (270.0, "L3") ] in
  print_endline "Mobile lecturer: the multicast *sender* walks through 3 rooms mid-talk\n";
  Printf.printf "%-34s %18s %9s %8s %7s %10s\n" "approach" "audience rx" "SG states"
    "asserts" "grafts" "tunnel[B]";
  List.iter
    (fun approach ->
      let rx, sg, asserts, grafts, tunnel, sent = run approach ~rooms in
      Printf.printf "%d. %-31s %5d/%5d/%5d %9d %8d %7d %10d   (sent %d)\n"
        (Approach.number approach) (Approach.name approach)
        (List.nth rx 0) (List.nth rx 1) (List.nth rx 2) sg asserts grafts tunnel sent)
    Approach.all;
  print_endline
    "\nExpected shape (paper 4.2.2/4.3): local sending (approaches 1, 4) leaves one\n\
     (S,G) tree per visited room in every router and triggers Assert processes;\n\
     reverse tunnelling (2, 3) keeps a single tree rooted at the home link at the\n\
     cost of encapsulation on the lecturer-to-home-agent path."
