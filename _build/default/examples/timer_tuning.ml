(* Section 4.4 as a network-operations exercise: an administrator
   expects highly mobile multicast receivers and wants to know how far
   to lower the MLD Query Interval.  The example sweeps TQuery,
   reports the user-visible delays against the signalling cost, and
   prints the paper's recommendation (including the TRespDel floor).

   Run with: dune exec examples/timer_tuning.exe *)

open Mmcast

let () =
  print_endline "MLD timer tuning for mobile receivers (paper, section 4.4)\n";
  let show title rows =
    Printf.printf "%s\n" title;
    Printf.printf "  %8s %22s %10s %12s %10s\n" "TQuery" "join mean/min/max [s]"
      "leave [s]" "wasted [B]" "MLD [B/s]";
    List.iter
      (fun (r : Experiments.sweep_row) ->
        Printf.printf "  %8.0f %8.1f/%5.1f/%6.1f %10.1f %12.0f %10.2f\n" r.tquery_s
          r.join_mean_s r.join_min_s r.join_max_s r.leave_mean_s r.wasted_mean_bytes
          r.mld_bytes_per_s)
      rows;
    print_newline ()
  in
  show "Hosts wait for the next Query (no unsolicited Reports):"
    (Experiments.timer_sweep ~trials:6 ~unsolicited:false ());
  show "With the paper's recommended unsolicited Reports on join:"
    (Experiments.timer_sweep ~trials:6 ~unsolicited:true ());
  let floor = Mld.Mld_config.default.Mld.Mld_config.query_response_interval in
  Printf.printf
    "Recommendation: lower TQuery toward its floor (TQuery >= TRespDel = %.0f s) and\n\
     enable unsolicited Reports; the MLD signalling cost grows only as 1/TQuery while\n\
     join and leave delays (and the bandwidth wasted on stale branches) shrink\n\
     roughly linearly.\n"
    (Engine.Time.seconds floor);
  (* Show the guard rail from the paper's footnote. *)
  match Mld.Mld_config.with_query_interval 5.0 Mld.Mld_config.default with
  | _ -> ()
  | exception Invalid_argument msg ->
    Printf.printf "\nSetting TQuery = 5 s is refused: %s\n" msg
