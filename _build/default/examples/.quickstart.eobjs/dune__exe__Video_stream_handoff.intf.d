examples/video_stream_handoff.mli:
