examples/mobile_lecturer.ml: Approach Host_stack List Metrics Mmcast Pimdm Printf Router_stack Scenario Traffic Workload
