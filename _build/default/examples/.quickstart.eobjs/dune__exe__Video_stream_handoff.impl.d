examples/video_stream_handoff.ml: Approach Engine Host_stack List Metrics Mld Mmcast Printf Scenario Traffic Workload
