examples/quickstart.mli:
