examples/ha_failover.ml: Approach Engine Host_stack Mmcast Printf Router_stack Scenario Traffic
