examples/timer_tuning.ml: Engine Experiments List Mld Mmcast Printf
