examples/timer_tuning.mli:
