examples/quickstart.ml: Format Host_stack List Metrics Mmcast Printf Scenario Traffic Tree
