examples/mobile_lecturer.mli:
