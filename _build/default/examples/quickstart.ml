(* Quickstart: build the paper's reference network, stream multicast
   data to three receivers, move one of them, and look at what the
   protocols did.

   Run with: dune exec examples/quickstart.exe *)

open Mmcast

let group = Scenario.group

let () =
  (* The Figure 1 internetwork: six links, five PIM-DM routers that
     are also home agents, one sender, three receivers. *)
  let scenario = Scenario.paper_figure1 Scenario.default_spec in
  let metrics = Metrics.attach scenario.Scenario.net in

  (* Receivers join the group shortly after the routers come up. *)
  Traffic.at scenario 5.0 (fun () -> Scenario.subscribe_receivers scenario group);

  (* Sender S streams 500-byte datagrams at 2 Hz. *)
  let sender = Scenario.host scenario "S" in
  ignore
    (Traffic.cbr scenario sender ~group ~from_t:30.0 ~until:120.0 ~interval:0.5 ~bytes:500);

  (* At t=60 s, receiver R3 roams from its home Link 4 to Link 6. *)
  let r3 = Scenario.host scenario "R3" in
  Traffic.at scenario 60.0 (fun () -> Host_stack.move_to r3 (Scenario.link scenario "L6"));

  Scenario.run_until scenario 120.0;

  (* What does the distribution tree look like now? *)
  print_endline "Distribution tree after R3's handoff:";
  print_endline (Tree.render scenario ~source:(Host_stack.home_address sender) ~group);
  Printf.printf "\nReceiver deliveries:\n";
  List.iter
    (fun name ->
      let h = Scenario.host scenario name in
      Printf.printf "  %s: %d datagrams (%d duplicate)\n" name
        (Host_stack.received_count h ~group)
        (Host_stack.duplicate_count h ~group))
    [ "R1"; "R2"; "R3" ];
  (match Metrics.join_delay r3 ~group with
   | Some d -> Printf.printf "\nR3's join delay after the handoff: %.2f s\n" d
   | None -> print_endline "\nR3 never received data after the handoff");
  Printf.printf "\nTraffic summary:\n";
  Metrics.pp_summary Format.std_formatter metrics
