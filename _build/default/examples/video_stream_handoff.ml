(* A commuter watches a multicast video stream on a mobile device that
   hands off between links every 45 seconds.  The example compares the
   paper's four delivery approaches on the metrics a streaming user
   cares about: datagrams lost around handoffs, worst-case rebuffering
   gap (join delay), duplicates, and the network cost (tunnel overhead
   and extra signalling).

   Run with: dune exec examples/video_stream_handoff.exe *)

open Mmcast

let group = Scenario.group
let stream_bytes = 1200 (* a video-sized datagram *)
let stream_interval = 0.04 (* 25 fps *)

type result = {
  approach : Approach.t;
  delivered : int;
  lost : int;
  dups : int;
  worst_gap_s : float;
  tunnel_bytes : int;
  signalling_bytes : int;
}

let run ~unsolicited approach =
  let mld =
    { Mld.Mld_config.default with
      unsolicited_report_count = (if unsolicited then 2 else 0) }
  in
  let spec = { Scenario.default_spec with Scenario.approach; mld } in
  let scenario = Scenario.paper_figure1 spec in
  let metrics = Metrics.attach scenario.Scenario.net in
  let viewer = Scenario.host scenario "R3" in
  let sender = Scenario.host scenario "S" in
  Traffic.at scenario 5.0 (fun () -> Host_stack.subscribe viewer group);
  ignore
    (Traffic.cbr scenario sender ~group ~from_t:30.0 ~until:330.0
       ~interval:stream_interval ~bytes:stream_bytes);
  (* The commute: L4 -> L6 -> L1 -> L2 -> back home to L4, one hop
     every 45 s. *)
  Workload.Mobility.script scenario viewer
    [ (60.0, "L6"); (105.0, "L1"); (150.0, "L2"); (195.0, "L4") ];
  (* Track the worst inter-arrival gap while the stream is hot. *)
  let last_rx = ref None in
  let worst_gap = ref 0.0 in
  Host_stack.set_on_data viewer (fun ~group:_ _ ->
      let now = Engine.Time.seconds (Engine.Sim.now scenario.Scenario.sim) in
      (match !last_rx with
       | Some prev -> if now -. prev > !worst_gap then worst_gap := now -. prev
       | None -> ());
      last_rx := Some now);
  Scenario.run_until scenario 360.0;
  let delivered = Host_stack.received_count viewer ~group in
  { approach;
    delivered;
    lost = Host_stack.data_sent sender - delivered;
    dups = Host_stack.duplicate_count viewer ~group;
    worst_gap_s = !worst_gap;
    tunnel_bytes = Metrics.bytes metrics Metrics.Tunnel_overhead;
    signalling_bytes = Metrics.signalling_bytes metrics }

let show ~unsolicited title =
  Printf.printf "%s\n" title;
  Printf.printf "%-34s %9s %6s %5s %9s %10s %10s\n" "approach" "delivered" "lost" "dup"
    "gap[s]" "tunnel[B]" "signal[B]";
  List.iter
    (fun approach ->
      let r = run ~unsolicited approach in
      Printf.printf "%d. %-31s %9d %6d %5d %9.2f %10d %10d\n"
        (Approach.number r.approach) (Approach.name r.approach) r.delivered r.lost r.dups
        r.worst_gap_s r.tunnel_bytes r.signalling_bytes)
    Approach.all;
  print_newline ()

let () =
  print_endline
    "Mobile video streaming: R3 hands off 4 times during a 25 fps multicast stream";
  print_endline "(7500 datagrams offered; losses happen around handoffs)\n";
  show ~unsolicited:false
    "RFC-default hosts (wait for the next MLD Query after each handoff):";
  show ~unsolicited:true "With the paper's fix (unsolicited Reports on join):";
  print_endline
    "Expected shape (paper 4.3): with default timers, local-membership approaches\n\
     (1 and 3) drop the stream for tens of seconds per handoff while tunnel\n\
     delivery (2 and 4) barely loses a frame, at the price of tunnel overhead.\n\
     Unsolicited Reports close most of the gap, exactly as section 4.4 argues."
