(* Unit tests for the PIM-DM router state machine, driven through a
   scripted environment.

   Fixture: one router with interfaces 0 (towards the source), 1 and 2
   (downstream).  The reverse path for the test source S is interface 0
   with upstream neighbour fe80::ff. *)

open Ipv6

let source = Addr.of_string "2001:db8:1::10"
let group = Addr.of_string "ff0e::1:1"
let upstream_addr = Addr.of_string "fe80::ff"
let my_addr = Addr.of_string "fe80::1"
let downstream1 = Addr.of_string "fe80::21"
let downstream2 = Addr.of_string "fe80::22"

type harness = {
  sim : Engine.Sim.t;
  sent : (int * Pim_message.t) list ref;  (* newest first *)
  forwarded : (int * Packet.t) list ref;
  members : (int * Addr.t, unit) Hashtbl.t;
  router : Pimdm.Pim_router.t;
  config : Pimdm.Pim_config.t;
}

let make ?(config = Pimdm.Pim_config.default) ?(ifaces = [ 0; 1; 2 ]) () =
  let sim = Engine.Sim.create () in
  let sent = ref [] in
  let forwarded = ref [] in
  let members = Hashtbl.create 4 in
  let env =
    { Pimdm.Pim_env.sim;
      trace = Engine.Trace.create ~enabled:false sim;
      rng = Engine.Rng.create 11;
      config;
      label = "R";
      interfaces = (fun () -> ifaces);
      local_address = (fun _ -> my_addr);
      send_message = (fun iface msg -> sent := (iface, msg) :: !sent);
      forward_data = (fun iface p -> forwarded := (iface, p) :: !forwarded);
      rpf =
        (fun ~source:s ->
          if Addr.equal s source then
            Some { Pimdm.Pim_env.rpf_iface = 0; upstream = Some upstream_addr; metric = 2 }
          else None);
      has_local_members = (fun iface g -> Hashtbl.mem members (iface, g));
      flood_eligible = (fun _ -> true) }
  in
  let router = Pimdm.Pim_router.create env in
  Pimdm.Pim_router.start router;
  (* Drop the initial hellos from the log. *)
  sent := [];
  { sim; sent; forwarded; members; router; config }

let data_packet ?(src = source) ?(seq = 0) () =
  Packet.make ~src ~dst:group (Packet.Data { stream_id = 1; seq; bytes = 500 })

let hello h ~iface ~from =
  Pimdm.Pim_router.handle_message h.router ~iface ~src:from
    (Pim_message.Hello { holdtime_s = 105 })

let add_member h ~iface = Hashtbl.replace h.members (iface, group) ()
let drop_member h ~iface = Hashtbl.remove h.members (iface, group)

let sg = { Pim_message.source; group }

let forwarded_ifaces h =
  List.rev_map fst !(h.forwarded) |> List.sort_uniq Int.compare

let clear h =
  h.sent := [];
  h.forwarded := []

let sent_of_kind h kind =
  List.rev (List.filter (fun (_, m) -> kind m) !(h.sent))

let is_prune = function
  | Pim_message.Join_prune { prunes = _ :: _; _ } -> true
  | _ -> false

let is_join = function
  | Pim_message.Join_prune { joins = _ :: _; prunes = []; _ } -> true
  | _ -> false

let is_graft = function
  | Pim_message.Graft _ -> true
  | _ -> false

let is_graft_ack = function
  | Pim_message.Graft_ack _ -> true
  | _ -> false

let is_assert = function
  | Pim_message.Assert _ -> true
  | _ -> false

let receive_data h ~iface = Pimdm.Pim_router.handle_data h.router ~iface (data_packet ())

let forwarding_tests =
  [ Alcotest.test_case "first datagram floods to neighbours and members" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        add_member h ~iface:2;
        receive_data h ~iface:0;
        Alcotest.(check (list int)) "both downstream ifaces" [ 1; 2 ] (forwarded_ifaces h);
        Alcotest.(check (list (pair Alcotest.(pair string string) unit)))
          "entry exists" []
          (ignore (Pimdm.Pim_router.entries h.router); []);
        Alcotest.(check int) "one (S,G)" 1 (List.length (Pimdm.Pim_router.entries h.router)));
    Alcotest.test_case "never forwards back onto the incoming interface" `Quick (fun () ->
        let h = make () in
        hello h ~iface:0 ~from:upstream_addr;
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        Alcotest.(check bool) "iface 0 clean" false (List.mem 0 (forwarded_ifaces h)));
    Alcotest.test_case "leaf flood happens exactly once" `Quick (fun () ->
        let h = make () in
        (* No neighbours, no members anywhere: ifaces 1,2 are empty
           leaves. *)
        receive_data h ~iface:0;
        Alcotest.(check (list int)) "first packet floods" [ 1; 2 ] (forwarded_ifaces h);
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check (list int)) "second packet pruned" [] (forwarded_ifaces h));
    Alcotest.test_case "leaf flood disabled (draft behaviour)" `Quick (fun () ->
        let config = { Pimdm.Pim_config.default with flood_to_leaf_links = false } in
        let h = make ~config () in
        receive_data h ~iface:0;
        Alcotest.(check (list int)) "no leaf forwarding at all" [] (forwarded_ifaces h));
    Alcotest.test_case "members alone keep an interface forwarding" `Quick (fun () ->
        let h = make () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check bool) "member iface still forwarding" true
          (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "data from an unroutable source is dropped" `Quick (fun () ->
        let h = make () in
        Pimdm.Pim_router.handle_data h.router ~iface:0
          (data_packet ~src:(Addr.of_string "2001:dead::1") ());
        Alcotest.(check int) "no state" 0 (List.length (Pimdm.Pim_router.entries h.router));
        Alcotest.(check (list int)) "nothing forwarded" [] (forwarded_ifaces h));
    Alcotest.test_case "(S,G) state expires after the data timeout" `Quick (fun () ->
        let h = make () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        Alcotest.(check int) "state present" 1
          (List.length (Pimdm.Pim_router.entries h.router));
        Engine.Sim.run ~until:211.0 h.sim;
        Alcotest.(check int) "state gone at 210 s" 0
          (List.length (Pimdm.Pim_router.entries h.router)));
    Alcotest.test_case "continued data keeps state alive" `Quick (fun () ->
        let h = make () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        for k = 1 to 4 do
          ignore
            (Engine.Sim.schedule_at h.sim (float_of_int k *. 100.0) (fun () ->
                 receive_data h ~iface:0))
        done;
        Engine.Sim.run ~until:450.0 h.sim;
        Alcotest.(check int) "alive at 450 s" 1
          (List.length (Pimdm.Pim_router.entries h.router)))
  ]

let prune_tests =
  [ Alcotest.test_case "prune waits TPruneDel, then stops forwarding" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = my_addr; holdtime_s = 210; joins = []; prunes = [ sg ] });
        (* Within the TPruneDel window we still forward. *)
        receive_data h ~iface:0;
        Alcotest.(check bool) "still forwarding in window" true
          (List.mem 1 (forwarded_ifaces h));
        clear h;
        Engine.Sim.run ~until:3.5 h.sim;
        receive_data h ~iface:0;
        Alcotest.(check bool) "pruned after TPruneDel" false
          (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "prune for another router is not ours to honour" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = downstream2;
               holdtime_s = 210;
               joins = [];
               prunes = [ sg ] });
        Engine.Sim.run ~until:5.0 h.sim;
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check bool) "still forwarding" true (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "join during the window cancels the prune" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = my_addr; holdtime_s = 210; joins = []; prunes = [ sg ] });
        ignore
          (Engine.Sim.schedule_at h.sim 1.0 (fun () ->
               Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream2
                 (Pim_message.Join_prune
                    { upstream_neighbor = my_addr;
                      holdtime_s = 210;
                      joins = [ sg ];
                      prunes = [] })));
        Engine.Sim.run ~until:5.0 h.sim;
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check bool) "forwarding survived" true (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "pruned interface resumes after the holdtime" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = my_addr; holdtime_s = 210; joins = []; prunes = [ sg ] });
        Engine.Sim.run ~until:5.0 h.sim;
        (* Keep the hello and entry state alive during the holdtime. *)
        ignore (Engine.Sim.schedule_at h.sim 100.0 (fun () ->
            hello h ~iface:1 ~from:downstream1;
            receive_data h ~iface:0));
        ignore (Engine.Sim.schedule_at h.sim 200.0 (fun () ->
            hello h ~iface:1 ~from:downstream1;
            receive_data h ~iface:0));
        Engine.Sim.run ~until:215.0 h.sim;
        clear h;
        receive_data h ~iface:0;
        (* 3 s TPruneDel + 210 s holdtime have passed. *)
        Alcotest.(check bool) "re-flooding" true (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "members win over a downstream router's prune" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        add_member h ~iface:1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = my_addr; holdtime_s = 210; joins = []; prunes = [ sg ] });
        Engine.Sim.run ~until:5.0 h.sim;
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check bool) "member keeps the interface" true
          (List.mem 1 (forwarded_ifaces h)))
  ]

let upstream_tests =
  [ Alcotest.test_case "empty outgoing list prunes upstream" `Quick (fun () ->
        let config = { Pimdm.Pim_config.default with flood_to_leaf_links = false } in
        let h = make ~config () in
        receive_data h ~iface:0;
        (match sent_of_kind h is_prune with
         | [ (iface, Pim_message.Join_prune { upstream_neighbor; prunes; _ }) ] ->
           Alcotest.(check int) "on the incoming interface" 0 iface;
           Alcotest.(check bool) "to the upstream neighbour" true
             (Addr.equal upstream_neighbor upstream_addr);
           Alcotest.(check int) "prunes (S,G)" 1 (List.length prunes)
         | _ -> Alcotest.fail "expected exactly one prune");
        (* More data soon after: the prune is not repeated. *)
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check int) "prune held" 0 (List.length (sent_of_kind h is_prune)));
    Alcotest.test_case "hearing a prune for traffic we need triggers a join" `Quick
      (fun () ->
        let h = make () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        clear h;
        (* Another router on our incoming link prunes our upstream. *)
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:downstream2
          (Pim_message.Join_prune
             { upstream_neighbor = upstream_addr;
               holdtime_s = 210;
               joins = [];
               prunes = [ sg ] });
        Engine.Sim.run ~until:3.0 h.sim;
        (match sent_of_kind h is_join with
         | [ (0, Pim_message.Join_prune { upstream_neighbor; joins; _ }) ] ->
           Alcotest.(check bool) "join to upstream" true
             (Addr.equal upstream_neighbor upstream_addr);
           Alcotest.(check int) "joins (S,G)" 1 (List.length joins)
         | _ -> Alcotest.fail "expected exactly one overriding join"));
    Alcotest.test_case "another router's join suppresses ours" `Quick (fun () ->
        let h = make () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:downstream2
          (Pim_message.Join_prune
             { upstream_neighbor = upstream_addr;
               holdtime_s = 210;
               joins = [];
               prunes = [ sg ] });
        (* A third router overrides immediately. *)
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = upstream_addr;
               holdtime_s = 210;
               joins = [ sg ];
               prunes = [] });
        Engine.Sim.run ~until:3.0 h.sim;
        Alcotest.(check int) "our join suppressed" 0 (List.length (sent_of_kind h is_join)));
    Alcotest.test_case "no interest means no overriding join" `Quick (fun () ->
        let config = { Pimdm.Pim_config.default with flood_to_leaf_links = false } in
        let h = make ~config () in
        receive_data h ~iface:0;
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:downstream2
          (Pim_message.Join_prune
             { upstream_neighbor = upstream_addr;
               holdtime_s = 210;
               joins = [];
               prunes = [ sg ] });
        Engine.Sim.run ~until:3.0 h.sim;
        Alcotest.(check int) "silent" 0 (List.length (sent_of_kind h is_join)))
  ]

let graft_tests =
  [ Alcotest.test_case "graft from downstream restores forwarding and is acked" `Quick
      (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = my_addr; holdtime_s = 210; joins = []; prunes = [ sg ] });
        Engine.Sim.run ~until:5.0 h.sim;
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Graft { upstream_neighbor = my_addr; joins = [ sg ] });
        (match sent_of_kind h is_graft_ack with
         | [ (1, Pim_message.Graft_ack { upstream_neighbor; joins }) ] ->
           Alcotest.(check bool) "ack addressed to grafter" true
             (Addr.equal upstream_neighbor downstream1);
           Alcotest.(check int) "acks the (S,G)" 1 (List.length joins)
         | _ -> Alcotest.fail "expected a graft-ack");
        receive_data h ~iface:0;
        Alcotest.(check bool) "forwarding again" true (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "graft cascades when we had pruned upstream" `Quick (fun () ->
        let config = { Pimdm.Pim_config.default with flood_to_leaf_links = false } in
        let h = make ~config () in
        hello h ~iface:1 ~from:downstream1;
        (* Downstream prunes, olist empties, we prune upstream. *)
        receive_data h ~iface:0;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Join_prune
             { upstream_neighbor = my_addr; holdtime_s = 210; joins = []; prunes = [ sg ] });
        Engine.Sim.run ~until:4.0 h.sim;
        receive_data h ~iface:0;
        Alcotest.(check bool) "we pruned upstream" true (sent_of_kind h is_prune <> []);
        clear h;
        (* Downstream wants back in. *)
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Graft { upstream_neighbor = my_addr; joins = [ sg ] });
        (match sent_of_kind h is_graft with
         | [ (0, Pim_message.Graft { upstream_neighbor; _ }) ] ->
           Alcotest.(check bool) "cascaded upstream" true
             (Addr.equal upstream_neighbor upstream_addr)
         | _ -> Alcotest.fail "expected an upstream graft"));
    Alcotest.test_case "graft retransmits until acknowledged" `Quick (fun () ->
        let config = { Pimdm.Pim_config.default with flood_to_leaf_links = false } in
        let h = make ~config () in
        receive_data h ~iface:0;
        Engine.Sim.run ~until:1.0 h.sim;
        clear h;
        (* A member appears: graft upstream. *)
        add_member h ~iface:1;
        Pimdm.Pim_router.local_members_changed h.router ~iface:1 ~group ~present:true;
        Engine.Sim.run ~until:8.0 h.sim;
        let grafts = sent_of_kind h is_graft in
        Alcotest.(check bool) "retransmitted" true (List.length grafts >= 2);
        (* Ack stops the retry. *)
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:upstream_addr
          (Pim_message.Graft_ack { upstream_neighbor = my_addr; joins = [ sg ] });
        clear h;
        Engine.Sim.run ~until:20.0 h.sim;
        Alcotest.(check int) "no more grafts" 0 (List.length (sent_of_kind h is_graft)))
  ]

let assert_tests =
  [ Alcotest.test_case "data on an outgoing interface triggers an assert" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        clear h;
        receive_data h ~iface:1;
        (match sent_of_kind h is_assert with
         | [ (1, Pim_message.Assert { metric_preference; metric; _ }) ] ->
           Alcotest.(check int) "preference" 101 metric_preference;
           Alcotest.(check int) "metric from rpf" 2 metric
         | _ -> Alcotest.fail "expected one assert on iface 1"));
    Alcotest.test_case "no assert without state" `Quick (fun () ->
        let h = make () in
        receive_data h ~iface:1;
        (* Creates state with iif 0; iface 1 is an oif and flood-eligible,
           so an assert is legitimate; now try a truly stateless case. *)
        clear h;
        Pimdm.Pim_router.handle_data h.router ~iface:1
          (data_packet ~src:(Addr.of_string "2001:dead::1") ());
        Alcotest.(check int) "silent for unroutable" 0
          (List.length (sent_of_kind h is_assert)));
    Alcotest.test_case "losing an assert stops forwarding" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        (* A better router (lower metric) asserts on iface 1. *)
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Assert { group; source; metric_preference = 101; metric = 1 });
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check bool) "lost iface 1" false (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "winning an assert answers with our own" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        clear h;
        (* A worse router (higher metric) asserts. *)
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Assert { group; source; metric_preference = 101; metric = 9 });
        Alcotest.(check int) "we reply" 1 (List.length (sent_of_kind h is_assert));
        receive_data h ~iface:0;
        Alcotest.(check bool) "still forwarding" true (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "equal metrics: higher address wins" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        clear h;
        (* Same pref/metric; downstream1 (fe80::21) > us (fe80::1). *)
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Assert { group; source; metric_preference = 101; metric = 2 });
        receive_data h ~iface:0;
        Alcotest.(check bool) "we lost the tie" false (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "assert-loser state expires" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
          (Pim_message.Assert { group; source; metric_preference = 101; metric = 1 });
        (* Keep hello + entry alive past the 180 s assert time. *)
        ignore (Engine.Sim.schedule_at h.sim 100.0 (fun () ->
            hello h ~iface:1 ~from:downstream1;
            receive_data h ~iface:0));
        Engine.Sim.run ~until:181.0 h.sim;
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check bool) "contesting again" true (List.mem 1 (forwarded_ifaces h)));
    Alcotest.test_case "prune is re-sent when the assert changes the upstream" `Quick
      (fun () ->
        (* Regression: a Prune addressed to the reverse-path upstream is
           useless once the Assert elects a different forwarder; the
           next datagram must re-prune toward the winner instead of
           waiting out the holdtime. *)
        let config = { Pimdm.Pim_config.default with flood_to_leaf_links = false } in
        let h = make ~config () in
        receive_data h ~iface:0;
        (match sent_of_kind h is_prune with
         | [ (0, Pim_message.Join_prune { upstream_neighbor; _ }) ] ->
           Alcotest.(check bool) "first prune to rpf upstream" true
             (Addr.equal upstream_neighbor upstream_addr)
         | _ -> Alcotest.fail "expected the initial prune");
        clear h;
        (* The forwarder election on the incoming link picks another
           router. *)
        let winner = Addr.of_string "fe80::aa" in
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:winner
          (Pim_message.Assert { group; source; metric_preference = 50; metric = 1 });
        receive_data h ~iface:0;
        (match sent_of_kind h is_prune with
         | [ (0, Pim_message.Join_prune { upstream_neighbor; _ }) ] ->
           Alcotest.(check bool) "re-pruned toward the winner" true
             (Addr.equal upstream_neighbor winner)
         | l -> Alcotest.failf "expected one corrected prune, got %d" (List.length l)));
    Alcotest.test_case "assert on the incoming interface selects a new upstream" `Quick
      (fun () ->
        let config = { Pimdm.Pim_config.default with flood_to_leaf_links = false } in
        let h = make ~config () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        (* A different router wins the forwarder election on our
           incoming link. *)
        let winner = Addr.of_string "fe80::aa" in
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:winner
          (Pim_message.Assert { group; source; metric_preference = 50; metric = 1 });
        (match Pimdm.Pim_router.entry_info h.router ~source ~group with
         | Some info ->
           Alcotest.(check bool) "upstream is the assert winner" true
             (info.Pimdm.Pim_router.upstream = Some winner)
         | None -> Alcotest.fail "entry missing");
        (* Our next prune goes to the winner. *)
        drop_member h ~iface:1;
        clear h;
        receive_data h ~iface:0;
        match sent_of_kind h is_prune with
        | [ (0, Pim_message.Join_prune { upstream_neighbor; _ }) ] ->
          Alcotest.(check bool) "prune to winner" true (Addr.equal upstream_neighbor winner)
        | _ -> Alcotest.fail "expected a prune to the assert winner")
  ]

let neighbor_tests =
  [ Alcotest.test_case "hello creates a neighbour, holdtime expires it" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        Alcotest.(check (list string)) "present" [ Addr.to_string downstream1 ]
          (List.map Addr.to_string (Pimdm.Pim_router.neighbors h.router ~iface:1));
        Engine.Sim.run ~until:106.0 h.sim;
        Alcotest.(check int) "expired" 0
          (List.length (Pimdm.Pim_router.neighbors h.router ~iface:1)));
    Alcotest.test_case "periodic hellos keep neighbours alive" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        for k = 1 to 10 do
          ignore
            (Engine.Sim.schedule_at h.sim (float_of_int k *. 30.0) (fun () ->
                 hello h ~iface:1 ~from:downstream1))
        done;
        Engine.Sim.run ~until:300.0 h.sim;
        Alcotest.(check int) "alive" 1
          (List.length (Pimdm.Pim_router.neighbors h.router ~iface:1)));
    Alcotest.test_case "interface_added joins existing entries" `Quick (fun () ->
        let h = make ~ifaces:[ 0; 1 ] () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.interface_added h.router ~iface:7;
        (match Pimdm.Pim_router.entry_info h.router ~source ~group with
         | Some info ->
           Alcotest.(check bool) "new oif listed" true
             (List.exists (fun o -> o.Pimdm.Pim_router.oif = 7) info.Pimdm.Pim_router.oifs)
         | None -> Alcotest.fail "entry missing"));
    Alcotest.test_case "stop flushes all state" `Quick (fun () ->
        let h = make () in
        hello h ~iface:1 ~from:downstream1;
        add_member h ~iface:1;
        receive_data h ~iface:0;
        Pimdm.Pim_router.stop h.router;
        Alcotest.(check int) "no entries" 0
          (List.length (Pimdm.Pim_router.entries h.router));
        Alcotest.(check int) "no neighbours" 0
          (List.length (Pimdm.Pim_router.neighbors h.router ~iface:1));
        clear h;
        receive_data h ~iface:0;
        Alcotest.(check (list int)) "ignores data when stopped" [] (forwarded_ifaces h))
  ]

let refresh_config =
  { Pimdm.Pim_config.default with
    state_refresh_interval = Some 60.0;
    flood_to_leaf_links = false }

(* A harness whose rpf says the source is directly attached (iface 0,
   no upstream): this router is a first hop and originates refreshes. *)
let make_first_hop () =
  let sim = Engine.Sim.create () in
  let sent = ref [] in
  let forwarded = ref [] in
  let members = Hashtbl.create 4 in
  let env =
    { Pimdm.Pim_env.sim;
      trace = Engine.Trace.create ~enabled:false sim;
      rng = Engine.Rng.create 11;
      config = refresh_config;
      label = "FH";
      interfaces = (fun () -> [ 0; 1; 2 ]);
      local_address = (fun _ -> my_addr);
      send_message = (fun iface msg -> sent := (iface, msg) :: !sent);
      forward_data = (fun iface p -> forwarded := (iface, p) :: !forwarded);
      rpf =
        (fun ~source:s ->
          if Addr.equal s source then
            Some { Pimdm.Pim_env.rpf_iface = 0; upstream = None; metric = 0 }
          else None);
      has_local_members = (fun iface g -> Hashtbl.mem members (iface, g));
      flood_eligible = (fun _ -> true) }
  in
  let router = Pimdm.Pim_router.create env in
  Pimdm.Pim_router.start router;
  sent := [];
  { sim; sent; forwarded; members; router; config = refresh_config }

let is_refresh = function
  | Pim_message.State_refresh _ -> true
  | _ -> false

let state_refresh_tests =
  [ Alcotest.test_case "first-hop router originates periodic refreshes" `Quick (fun () ->
        let h = make_first_hop () in
        hello h ~iface:1 ~from:downstream1;
        ignore (Engine.Sim.schedule_at h.sim 50.0 (fun () -> hello h ~iface:1 ~from:downstream1));
        ignore (Engine.Sim.schedule_at h.sim 100.0 (fun () -> hello h ~iface:1 ~from:downstream1));
        receive_data h ~iface:0;
        (* Keep the entry alive with data. *)
        ignore (Engine.Sim.schedule_at h.sim 100.0 (fun () -> receive_data h ~iface:0));
        Engine.Sim.run ~until:130.0 h.sim;
        let refreshes = sent_of_kind h is_refresh in
        Alcotest.(check int) "two rounds (t=60, t=120)" 2 (List.length refreshes);
        List.iter
          (fun (iface, _) -> Alcotest.(check int) "on the neighbour iface" 1 iface)
          refreshes);
    Alcotest.test_case "non-first-hop routers do not originate" `Quick (fun () ->
        let config = refresh_config in
        let h = make ~config () in
        hello h ~iface:1 ~from:downstream1;
        ignore (Engine.Sim.schedule_at h.sim 50.0 (fun () -> hello h ~iface:1 ~from:downstream1));
        receive_data h ~iface:0;
        ignore (Engine.Sim.schedule_at h.sim 60.0 (fun () -> receive_data h ~iface:0));
        Engine.Sim.run ~until:100.0 h.sim;
        Alcotest.(check int) "silent" 0 (List.length (sent_of_kind h is_refresh)));
    Alcotest.test_case "refresh on the iif extends (S,G) state" `Quick (fun () ->
        let config = refresh_config in
        let h = make ~config () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        (* No more data, but refreshes arrive every 60 s. *)
        for k = 1 to 6 do
          ignore
            (Engine.Sim.schedule_at h.sim (float_of_int k *. 60.0) (fun () ->
                 Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:upstream_addr
                   (Pim_message.State_refresh
                      { refresh_source = source;
                        refresh_group = group;
                        interval_s = 60;
                        prune_indicator = false })))
        done;
        Engine.Sim.run ~until:380.0 h.sim;
        Alcotest.(check int) "state alive past the 210 s data timeout" 1
          (List.length (Pimdm.Pim_router.entries h.router)));
    Alcotest.test_case "refresh arriving off the iif is ignored" `Quick (fun () ->
        let config = refresh_config in
        let h = make ~config () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        for k = 1 to 6 do
          ignore
            (Engine.Sim.schedule_at h.sim (float_of_int k *. 60.0) (fun () ->
                 Pimdm.Pim_router.handle_message h.router ~iface:2 ~src:downstream2
                   (Pim_message.State_refresh
                      { refresh_source = source;
                        refresh_group = group;
                        interval_s = 60;
                        prune_indicator = false })))
        done;
        Engine.Sim.run ~until:380.0 h.sim;
        Alcotest.(check int) "state expired normally" 0
          (List.length (Pimdm.Pim_router.entries h.router)));
    Alcotest.test_case "refresh propagates to neighbour interfaces" `Quick (fun () ->
        let config = refresh_config in
        let h = make ~config () in
        hello h ~iface:1 ~from:downstream1;
        add_member h ~iface:2;
        receive_data h ~iface:0;
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:upstream_addr
          (Pim_message.State_refresh
             { refresh_source = source;
               refresh_group = group;
               interval_s = 60;
               prune_indicator = false });
        (match sent_of_kind h is_refresh with
         | [ (1, _) ] -> ()
         | l -> Alcotest.failf "expected one forwarded refresh on iface 1, got %d" (List.length l)));
    Alcotest.test_case "pruned downstream answers a refresh with a prune" `Quick (fun () ->
        let config = refresh_config in
        let h = make ~config () in
        (* olist empty: the router pruned upstream after the first
           datagram. *)
        receive_data h ~iface:0;
        Alcotest.(check int) "initial prune" 1 (List.length (sent_of_kind h is_prune));
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:upstream_addr
          (Pim_message.State_refresh
             { refresh_source = source;
               refresh_group = group;
               interval_s = 60;
               prune_indicator = false });
        Alcotest.(check int) "renewed prune" 1 (List.length (sent_of_kind h is_prune)))
  ]

(* Model-style property: throw random operation sequences at a router
   and check structural invariants after every step. *)
let random_ops_property =
  let gen_op =
    QCheck.Gen.(
      frequency
        [ (4, map (fun i -> `Data (i mod 3)) small_nat);
          (2, return `Prune);
          (2, return `Join);
          (1, return `Graft);
          (2, map (fun i -> `Member (i mod 3, i mod 2 = 0)) small_nat);
          (1, return `Hello);
          (2, map (fun i -> `Advance (float_of_int (i mod 100))) small_nat);
          (1, return `Assert_in) ])
  in
  QCheck.Test.make ~name:"invariants hold under random operation sequences" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_op))
    (fun ops ->
      let h = make () in
      let ok = ref true in
      List.iter
        (fun op ->
          (match op with
           | `Data iface -> receive_data h ~iface
           | `Prune ->
             Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
               (Pim_message.Join_prune
                  { upstream_neighbor = my_addr;
                    holdtime_s = 210;
                    joins = [];
                    prunes = [ sg ] })
           | `Join ->
             Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream2
               (Pim_message.Join_prune
                  { upstream_neighbor = my_addr;
                    holdtime_s = 210;
                    joins = [ sg ];
                    prunes = [] })
           | `Graft ->
             Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
               (Pim_message.Graft { upstream_neighbor = my_addr; joins = [ sg ] })
           | `Member (iface, present) ->
             if present then add_member h ~iface else drop_member h ~iface;
             Pimdm.Pim_router.local_members_changed h.router ~iface ~group ~present
           | `Hello -> hello h ~iface:1 ~from:downstream1
           | `Advance dt ->
             Engine.Sim.run ~until:(Engine.Sim.now h.sim +. dt) h.sim
           | `Assert_in ->
             Pimdm.Pim_router.handle_message h.router ~iface:1 ~src:downstream1
               (Pim_message.Assert
                  { group; source; metric_preference = 101; metric = 1 }));
          (* Invariants: data is never replicated back onto the
             incoming interface, and at most one (S,G) entry exists for
             our single source/group. *)
          if List.mem 0 (forwarded_ifaces h) then ok := false;
          if List.length (Pimdm.Pim_router.entries h.router) > 1 then ok := false)
        ops;
      !ok)

let prune_indicator_tests =
  [ Alcotest.test_case "P-bit refresh recovers a needing branch with a graft" `Quick
      (fun () ->
        (* The upstream pruned us (our overriding Join was lost): a
           State Refresh with the prune indicator set, while we still
           have receivers, must trigger a Graft. *)
        let h = make ~config:refresh_config () in
        add_member h ~iface:1;
        receive_data h ~iface:0;
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:upstream_addr
          (Pim_message.State_refresh
             { refresh_source = source;
               refresh_group = group;
               interval_s = 60;
               prune_indicator = true });
        (match sent_of_kind h is_graft with
         | [ (0, Pim_message.Graft { upstream_neighbor; _ }) ] ->
           Alcotest.(check bool) "graft to upstream" true
             (Addr.equal upstream_neighbor upstream_addr)
         | l -> Alcotest.failf "expected one graft, got %d" (List.length l));
        (* Without the P bit, no graft. *)
        clear h;
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:upstream_addr
          (Pim_message.Graft_ack { upstream_neighbor = my_addr; joins = [ sg ] });
        Pimdm.Pim_router.handle_message h.router ~iface:0 ~src:upstream_addr
          (Pim_message.State_refresh
             { refresh_source = source;
               refresh_group = group;
               interval_s = 60;
               prune_indicator = false });
        Alcotest.(check int) "quiet without P" 0 (List.length (sent_of_kind h is_graft)))
  ]

let () =
  Alcotest.run "pimdm"
    [ ("forwarding", forwarding_tests);
      ("state refresh", state_refresh_tests);
      ("prune", prune_tests);
      ("upstream", upstream_tests);
      ("graft", graft_tests);
      ("assert", assert_tests);
      ("neighbors", neighbor_tests);
      ("prune indicator", prune_indicator_tests);
      ("random ops", [ QCheck_alcotest.to_alcotest random_ops_property ])
    ]
