(* Unit tests for the core library: approaches, metrics, node stacks
   and the paper-experiment runners. *)

open Ipv6
open Mmcast

let group = Scenario.group

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let approach_tests =
  [ Alcotest.test_case "numbering matches Table 1" `Quick (fun () ->
        Alcotest.(check (list int)) "1..4" [ 1; 2; 3; 4 ]
          (List.map Approach.number Approach.all);
        Alcotest.(check bool) "1 = local/local" true
          (Approach.equal (Approach.of_number 1) Approach.local_membership);
        Alcotest.(check bool) "2 = tunnel/tunnel" true
          (Approach.equal (Approach.of_number 2) Approach.bidirectional_tunnel);
        Alcotest.(check bool) "3 sends via tunnel" true
          (Approach.tunnel_to_home_agent.Approach.send = Approach.Send_tunnel);
        Alcotest.(check bool) "3 receives locally" true
          (Approach.tunnel_to_home_agent.Approach.receive = Approach.Receive_local);
        Alcotest.(check bool) "4 mirrors 3" true
          (Approach.tunnel_from_home_agent.Approach.send = Approach.Send_local
           && Approach.tunnel_from_home_agent.Approach.receive = Approach.Receive_tunnel));
    Alcotest.test_case "of_number rejects out of range" `Quick (fun () ->
        List.iter
          (fun n ->
            match Approach.of_number n with
            | _ -> Alcotest.failf "%d accepted" n
            | exception Invalid_argument _ -> ())
          [ 0; 5; -1 ]);
    Alcotest.test_case "round trip" `Quick (fun () ->
        List.iter
          (fun a ->
            Alcotest.(check bool) (Approach.name a) true
              (Approach.equal a (Approach.of_number (Approach.number a))))
          Approach.all)
  ]

let load_tests =
  [ Alcotest.test_case "total work weighting" `Quick (fun () ->
        let l = Load.create () in
        l.Load.packets_processed <- 10;
        l.Load.encapsulations <- 3;
        l.Load.decapsulations <- 2;
        l.Load.control_messages <- 5;
        l.Load.intercepted <- 1;
        Alcotest.(check int) "10 + 2*5 + 5 + 1" 26 (Load.total_work l);
        Load.reset l;
        Alcotest.(check int) "reset" 0 (Load.total_work l))
  ]

let scenario_tests =
  [ Alcotest.test_case "paper network shape" `Quick (fun () ->
        let s = Scenario.paper_figure1 Scenario.default_spec in
        Alcotest.(check int) "five routers" 5 (List.length s.Scenario.routers);
        Alcotest.(check int) "four hosts" 4 (List.length s.Scenario.hosts);
        let topo = Net.Network.topology s.Scenario.net in
        Alcotest.(check int) "six links" 6 (List.length (Net.Topology.links topo));
        (* Router attachments from the paper. *)
        List.iter
          (fun (router, links) ->
            let node = Router_stack.node_id (Scenario.router s router) in
            Alcotest.(check (list string)) router links
              (List.map (Net.Topology.link_name topo) (Net.Topology.links_of_node topo node)))
          [ ("A", [ "L1"; "L2" ]); ("B", [ "L2"; "L3" ]); ("C", [ "L2"; "L3" ]);
            ("D", [ "L3"; "L4"; "L5" ]); ("E", [ "L3"; "L6" ]) ]);
    Alcotest.test_case "hosts homed per the paper" `Quick (fun () ->
        let s = Scenario.paper_figure1 Scenario.default_spec in
        List.iter
          (fun (host, link) ->
            let h = Scenario.host s host in
            Alcotest.(check string) host link
              (Net.Topology.link_name
                 (Net.Network.topology s.Scenario.net)
                 (Host_stack.home_link h)))
          [ ("S", "L1"); ("R1", "L1"); ("R2", "L2"); ("R3", "L4") ]);
    Alcotest.test_case "group address is global-scope multicast" `Quick (fun () ->
        Alcotest.(check bool) "multicast" true (Addr.is_multicast Scenario.group);
        Alcotest.(check (option int)) "global scope" (Some 14)
          (Addr.multicast_scope Scenario.group));
    Alcotest.test_case "subscribe_receivers skips the sender" `Quick (fun () ->
        let s = Scenario.paper_figure1 Scenario.default_spec in
        Scenario.subscribe_receivers s group;
        Alcotest.(check int) "sender clean" 0
          (List.length (Host_stack.subscriptions (Scenario.host s "S")));
        List.iter
          (fun r ->
            Alcotest.(check int) r 1
              (List.length (Host_stack.subscriptions (Scenario.host s r))))
          [ "R1"; "R2"; "R3" ]);
    Alcotest.test_case "build rejects dangling link names" `Quick (fun () ->
        match
          Scenario.build Scenario.default_spec
            ~links:[ ("L1", "2001:db8:1::/64") ]
            ~routers:[ ("A", [ "L1"; "L9" ], []) ]
            ~hosts:[]
        with
        | _ -> Alcotest.fail "expected rejection"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "unknown names rejected by accessors" `Quick (fun () ->
        let s = Scenario.paper_figure1 Scenario.default_spec in
        (match Scenario.router s "Z" with
         | _ -> Alcotest.fail "router Z"
         | exception Invalid_argument _ -> ());
        (match Scenario.host s "Z" with
         | _ -> Alcotest.fail "host Z"
         | exception Invalid_argument _ -> ());
        match Scenario.link s "L9" with
        | _ -> Alcotest.fail "link L9"
        | exception Invalid_argument _ -> ())
  ]

(* A started scenario with a running stream, shared by several tests. *)
let stream_scenario ?(spec = Scenario.default_spec) ?(until = 100.0) () =
  let s = Scenario.paper_figure1 spec in
  let metrics = Metrics.attach s.Scenario.net in
  Traffic.at s 5.0 (fun () -> Scenario.subscribe_receivers s group);
  ignore
    (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:30.0 ~until ~interval:0.5 ~bytes:500);
  (s, metrics)

let host_stack_tests =
  [ Alcotest.test_case "source address through a handoff (stale window)" `Quick (fun () ->
        let s, _ = stream_scenario () in
        let r3 = Scenario.host s "R3" in
        let home = Host_stack.home_address r3 in
        Traffic.at s 50.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        (* Just after the move, detection has not happened: stale home
           address; 100 ms later the care-of address is in place. *)
        Traffic.at s 50.05 (fun () ->
            Alcotest.(check bool) "stale during detection" true
              (Addr.equal (Host_stack.current_source_address r3) home));
        Traffic.at s 50.2 (fun () ->
            let coa = Host_stack.current_source_address r3 in
            Alcotest.(check bool) "care-of after detection" false (Addr.equal coa home);
            Alcotest.(check bool) "on the L6 prefix" true
              (Prefix.contains (Prefix.of_string "2001:db8:6::/64") coa);
            Alcotest.(check bool) "not at home" false (Host_stack.at_home r3));
        Scenario.run_until s 60.0);
    Alcotest.test_case "move_to the current link is a no-op" `Quick (fun () ->
        let s, _ = stream_scenario () in
        let r3 = Scenario.host s "R3" in
        Scenario.run_until s 10.0;
        let attach0 = Host_stack.last_attach_time r3 in
        Host_stack.move_to r3 (Scenario.link s "L4");
        Alcotest.(check (float 1e-9)) "attach time unchanged" attach0
          (Host_stack.last_attach_time r3));
    Alcotest.test_case "unsubscribe stops delivery" `Quick (fun () ->
        let s, _ = stream_scenario ~until:200.0 () in
        let r2 = Scenario.host s "R2" in
        Traffic.at s 60.0 (fun () -> Host_stack.unsubscribe r2 group);
        Scenario.run_until s 70.0;
        let at_unsub = Host_stack.received_count r2 ~group in
        Alcotest.(check bool) "received before" true (at_unsub > 0);
        Scenario.run_until s 120.0;
        (* R2's MLD leave makes A stop... but R2 shares L2 with the
           tree; the stack must at least not deliver to the app. *)
        Alcotest.(check int) "no delivery after unsubscribe" at_unsub
          (Host_stack.received_count r2 ~group));
    Alcotest.test_case "sender load counts encapsulations when tunnelling" `Quick (fun () ->
        let spec = { Scenario.default_spec with approach = Approach.tunnel_to_home_agent } in
        let s, _ = stream_scenario ~spec ~until:200.0 () in
        let snd = Scenario.host s "S" in
        Traffic.at s 60.0 (fun () -> Host_stack.move_to snd (Scenario.link s "L6"));
        Scenario.run_until s 120.0;
        Alcotest.(check bool) "encapsulation work" true
          ((Host_stack.load snd).Load.encapsulations > 0));
    Alcotest.test_case "no duplicates delivered to a stationary receiver" `Quick (fun () ->
        let s, _ = stream_scenario () in
        Scenario.run_until s 100.0;
        (* R1 shares the sender's link: no redundant paths at all. *)
        Alcotest.(check int) "R1 clean" 0
          (Host_stack.duplicate_count (Scenario.host s "R1") ~group))
  ]

let edge_case_tests =
  [ Alcotest.test_case "second handoff during the detection window" `Quick (fun () ->
        (* R3 bounces L4 -> L6 -> L1 within 50 ms; only the final link
           may be detected, and the stale L6 detection must never
           land. *)
        let s, _ = stream_scenario ~until:200.0 () in
        let r3 = Scenario.host s "R3" in
        Traffic.at s 50.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        Traffic.at s 50.05 (fun () -> Host_stack.move_to r3 (Scenario.link s "L1"));
        Scenario.run_until s 52.0;
        Alcotest.(check bool) "ends on L1" true
          (Net.Ids.Link_id.equal (Host_stack.current_link r3) (Scenario.link s "L1"));
        Alcotest.(check bool) "care-of on L1, not L6" true
          (Prefix.contains (Prefix.of_string "2001:db8:1::/64")
             (Host_stack.current_source_address r3));
        Scenario.run_until s 100.0;
        Alcotest.(check bool) "receiving on L1" true
          (Host_stack.received_count r3 ~group > 0));
    Alcotest.test_case "subscribe while away joins through the current path" `Quick
      (fun () ->
        (* R3 moves first, subscribes later: the join must use the
           foreign link (approach 1). *)
        let s = Scenario.paper_figure1 Scenario.default_spec in
        let metrics = Metrics.attach s.Scenario.net in
        let r3 = Scenario.host s "R3" in
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:10.0 ~until:120.0
             ~interval:0.5 ~bytes:300);
        Traffic.at s 20.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        Traffic.at s 60.0 (fun () -> Host_stack.subscribe r3 group);
        Scenario.run_until s 120.0;
        Alcotest.(check bool) "receives on the foreign link" true
          (Host_stack.received_count r3 ~group > 50);
        (* No traffic ever went to L4 for the group beyond the flood. *)
        Alcotest.(check bool) "home link stayed quiet" true
          (Metrics.data_bytes_on metrics (Scenario.link s "L4") < 3 * 340));
    Alcotest.test_case "mobile host as sender and receiver (approach 2)" `Quick (fun () ->
        (* The paper: 'the general case that a mobile host is both
           sender and receiver can be derived by combining the
           scenarios'.  Under the bi-directional tunnel the host's own
           datagrams come back through the tunnel (multicast loopback
           via the home agent), and it receives the other sender too. *)
        let spec = { Scenario.default_spec with approach = Approach.bidirectional_tunnel } in
        let s, _ = stream_scenario ~spec ~until:200.0 () in
        let r3 = Scenario.host s "R3" in
        Traffic.at s 40.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        ignore (Traffic.cbr s r3 ~group ~from_t:60.0 ~until:100.0 ~interval:1.0 ~bytes:100);
        Scenario.run_until s 120.0;
        (* R3 heard S's stream through the tunnel. *)
        Alcotest.(check bool) "receives the other sender" true
          (Host_stack.received_count r3 ~group > 100);
        (* And R1/R2 heard R3's reverse-tunnelled stream. *)
        Alcotest.(check bool) "others receive the mobile sender" true
          (Host_stack.received_count (Scenario.host s "R1") ~group
           > Host_stack.received_count r3 ~group);
        Alcotest.(check int) "R3 sent its datagrams" 40 (Host_stack.data_sent r3));
    Alcotest.test_case "unsubscribing the last member prunes within seconds" `Quick
      (fun () ->
        (* R3 is the only member behind D; its Done lets MLD notify PIM
           quickly (no 260 s leave delay), and D prunes. *)
        let s, metrics = stream_scenario ~until:300.0 () in
        let r3 = Scenario.host s "R3" in
        Traffic.at s 60.0 (fun () -> Host_stack.unsubscribe r3 group);
        Scenario.run_until s 120.0;
        (match Metrics.last_data_tx metrics (Scenario.link s "L4") ~group with
         | Some last ->
           Alcotest.(check bool)
             (Printf.sprintf "L4 went quiet fast (last data at %.1f)" last)
             true (last < 70.0)
         | None -> Alcotest.fail "no data ever on L4");
        let counts = Metrics.control_counts metrics in
        Alcotest.(check bool) "done sent" true (counts.Metrics.dones > 0))
  ]

let router_stack_tests =
  [ Alcotest.test_case "provisioning requires a served link" `Quick (fun () ->
        let s, _ = stream_scenario () in
        let a = Scenario.router s "A" in
        match Router_stack.provision_mobile_host a ~home:(Addr.of_string "2001:db8:4::77") with
        | _ -> Alcotest.fail "A does not serve L4"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "binding update handled, acknowledged, proxied" `Quick (fun () ->
        let s, _ = stream_scenario ~until:200.0 () in
        let r3 = Scenario.host s "R3" in
        let d = Scenario.router s "D" in
        Traffic.at s 50.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        Scenario.run_until s 55.0;
        (match Router_stack.binding_for d (Host_stack.home_address r3) with
         | Some entry ->
           Alcotest.(check bool) "coa on L6" true
             (Prefix.contains (Prefix.of_string "2001:db8:6::/64")
                entry.Mipv6.Binding_cache.care_of)
         | None -> Alcotest.fail "no binding at D");
        (* D now defends R3's home address on L4. *)
        Alcotest.(check bool) "proxy claim" true
          (Net.Network.resolve s.Scenario.net ~link:(Scenario.link s "L4")
             (Host_stack.home_address r3)
           = Some (Router_stack.node_id d));
        (* Registration got acknowledged at the mobile node. *)
        Alcotest.(check bool) "acked" true
          (Mipv6.Mobile_node.is_registered (Host_stack.mobile r3)));
    Alcotest.test_case "unicast to an away mobile host is tunnelled" `Quick (fun () ->
        let s, _ = stream_scenario ~until:200.0 () in
        let r3 = Scenario.host s "R3" in
        let r1 = Scenario.host s "R1" in
        Traffic.at s 50.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        Scenario.run_until s 60.0;
        (* R1 sends a unicast datagram to R3's home address through the
           raw network interface. *)
        let p =
          Packet.make ~src:(Host_stack.home_address r1) ~dst:(Host_stack.home_address r3)
            (Packet.Data { stream_id = 99; seq = 1; bytes = 64 })
        in
        let received = ref false in
        Net.Network.add_transmit_observer s.Scenario.net (fun link packet ->
            (* The tunnelled copy appears on L6 as an encapsulated
               unicast addressed to the care-of address. *)
            if
              Net.Ids.Link_id.equal link (Scenario.link s "L6")
              && Packet.tunnel_depth packet = 1
              && Packet.payload_data_bytes packet = 64
            then received := true);
        Net.Network.transmit s.Scenario.net
          ~from:(Host_stack.node_id r1)
          ~link:(Scenario.link s "L1")
          (Net.Network.To_node (Router_stack.node_id (Scenario.router s "A")))
          p;
        Scenario.run_until s 61.0;
        Alcotest.(check bool) "intercepted and tunnelled to L6" true !received;
        Alcotest.(check bool) "D did proxy work" true
          ((Router_stack.load (Scenario.router s "D")).Load.intercepted > 0));
    Alcotest.test_case "tunnel iface bookkeeping" `Quick (fun () ->
        let s, _ = stream_scenario () in
        Scenario.run_until s 1.0;
        let d = Scenario.router s "D" in
        let home = Host_stack.home_address (Scenario.host s "R3") in
        (match Router_stack.tunnel_iface_of d home with
         | Some viface ->
           Alcotest.(check bool) "virtual" true (Router_stack.is_virtual_iface viface);
           Alcotest.(check bool) "inverse" true
             (Router_stack.tunnel_home_of d viface = Some home)
         | None -> Alcotest.fail "R3 not provisioned at D");
        Alcotest.(check bool) "real ifaces are not virtual" false
          (Router_stack.is_virtual_iface 3))
  ]

let hop_limit_tests =
  [ Alcotest.test_case "unicast hop limit is enforced" `Quick (fun () ->
        let s, _ = stream_scenario () in
        Scenario.run_until s 10.0;
        (* Inject a unicast packet with hop limit 2 from S (L1) toward
           R3's home address (L4): the path needs 3 router hops, so it
           must die en route. *)
        let r3 = Scenario.host s "R3" in
        let received = ref false in
        Host_stack.set_on_data r3 (fun ~group:_ _ -> received := true);
        let p =
          Packet.make ~hop_limit:2
            ~src:(Host_stack.home_address (Scenario.host s "S"))
            ~dst:(Host_stack.home_address r3)
            (Packet.Data { stream_id = 9; seq = 1; bytes = 64 })
        in
        Net.Network.transmit s.Scenario.net
          ~from:(Host_stack.node_id (Scenario.host s "S"))
          ~link:(Scenario.link s "L1")
          (Net.Network.To_node (Router_stack.node_id (Scenario.router s "A")))
          p;
        Scenario.run_until s 11.0;
        Alcotest.(check bool) "died before L4" false !received;
        (* The same packet with a sufficient hop limit arrives. *)
        let ok =
          Packet.make ~hop_limit:8
            ~src:(Host_stack.home_address (Scenario.host s "S"))
            ~dst:(Host_stack.home_address r3)
            (Packet.Data { stream_id = 9; seq = 2; bytes = 64 })
        in
        Net.Network.transmit s.Scenario.net
          ~from:(Host_stack.node_id (Scenario.host s "S"))
          ~link:(Scenario.link s "L1")
          (Net.Network.To_node (Router_stack.node_id (Scenario.router s "A")))
          ok;
        Scenario.run_until s 12.0;
        (* Hosts only deliver multicast or tunnelled payloads to the
           app, so observe via the rx counter instead: the packet is a
           unicast data payload, which the stack ignores silently —
           what matters is that the first one was dropped in transit,
           which the router trace records. *)
        let trace = Net.Network.trace s.Scenario.net in
        Alcotest.(check bool) "hop limit drop traced" true
          (List.exists
             (fun r ->
               let m = r.Engine.Trace.message in
               let n = String.length "hop limit" in
               let rec go i =
                 i + n <= String.length m && (String.sub m i n = "hop limit" || go (i + 1))
               in
               go 0)
             (Engine.Trace.records trace)))
  ]

let metrics_tests =
  [ Alcotest.test_case "classification by payload" `Quick (fun () ->
        let s, m = stream_scenario () in
        Scenario.run_until s 100.0;
        Alcotest.(check bool) "data" true (Metrics.bytes m Metrics.Data_native > 0);
        Alcotest.(check bool) "mld" true (Metrics.bytes m Metrics.Mld_signalling > 0);
        Alcotest.(check bool) "pim" true (Metrics.bytes m Metrics.Pim_signalling > 0);
        Alcotest.(check int) "no tunnels in approach 1" 0
          (Metrics.bytes m Metrics.Tunnel_overhead);
        Alcotest.(check bool) "signalling sum" true
          (Metrics.signalling_bytes m
           = Metrics.bytes m Metrics.Mld_signalling
             + Metrics.bytes m Metrics.Pim_signalling
             + Metrics.bytes m Metrics.Mipv6_signalling));
    Alcotest.test_case "census counts hellos and queries" `Quick (fun () ->
        let s, m = stream_scenario () in
        Scenario.run_until s 100.0;
        let c = Metrics.control_counts m in
        (* 5 routers with 11 interfaces total, hello every 30 s. *)
        Alcotest.(check bool) "hellos" true (c.Metrics.hellos >= 30);
        Alcotest.(check bool) "queries" true (c.Metrics.queries > 0);
        Alcotest.(check bool) "reports" true (c.Metrics.reports > 0));
    Alcotest.test_case "last_data_tx tracks the group's traffic" `Quick (fun () ->
        let s, m = stream_scenario () in
        Scenario.run_until s 100.0;
        (match Metrics.last_data_tx m (Scenario.link s "L4") ~group with
         | Some t -> Alcotest.(check bool) "recent" true (t > 90.0)
         | None -> Alcotest.fail "no data seen on L4");
        Alcotest.(check bool) "none on L5 for the group after the flood" true
          (match Metrics.last_data_tx m (Scenario.link s "L5") ~group with
           | Some t -> t < 35.0 (* only the initial flood *)
           | None -> false));
    Alcotest.test_case "reset zeroes counters" `Quick (fun () ->
        let s, m = stream_scenario () in
        Scenario.run_until s 100.0;
        Metrics.reset m;
        Alcotest.(check int) "bytes" 0 (Metrics.bytes m Metrics.Data_native);
        Alcotest.(check int) "census" 0 (Metrics.control_counts m).Metrics.hellos);
    Alcotest.test_case "join delay is None before any reception" `Quick (fun () ->
        let s, _ = stream_scenario () in
        Scenario.run_until s 10.0;
        Alcotest.(check bool) "no data yet" true
          (Metrics.join_delay (Scenario.host s "R3") ~group = None))
  ]

let tree_tests =
  [ Alcotest.test_case "edges name incoming and outgoing links" `Quick (fun () ->
        let s, _ = stream_scenario () in
        Scenario.run_until s 100.0;
        let source = Host_stack.home_address (Scenario.host s "S") in
        let edges = Tree.forwarding_edges s ~source ~group in
        Alcotest.(check bool) "A forwards L1->L2" true
          (List.exists
             (fun e ->
               e.Tree.router = "A" && e.Tree.in_via = "L1" && e.Tree.out_via = "L2")
             edges);
        Alcotest.(check (list string)) "links" [ "L1"; "L2"; "L3"; "L4" ]
          (Tree.links_carrying s ~source ~group);
        Alcotest.(check (list string)) "no tunnels" [] (Tree.tunnels_carrying s ~source ~group));
    Alcotest.test_case "render mentions every forwarding router" `Quick (fun () ->
        let s, _ = stream_scenario () in
        Scenario.run_until s 100.0;
        let source = Host_stack.home_address (Scenario.host s "S") in
        let text = Tree.render s ~source ~group in
        List.iter
          (fun fragment ->
            Alcotest.(check bool) fragment true
              (contains ~affix:fragment text))
          [ "A: L1 -> L2"; "links carrying traffic" ])
  ]

let experiment_tests =
  [ Alcotest.test_case "fig1 reproduces the paper's tree" `Quick (fun () ->
        let r = Experiments.fig1 () in
        Alcotest.(check (list string)) "links" [ "L1"; "L2"; "L3"; "L4" ] r.Experiments.links;
        Alcotest.(check (list string)) "no tunnels" [] r.Experiments.tunnels);
    Alcotest.test_case "fig2 moves the branch and measures delays" `Quick (fun () ->
        let r = Experiments.fig2 () in
        Alcotest.(check (list string)) "links" [ "L1"; "L2"; "L3"; "L6" ] r.Experiments.links;
        Alcotest.(check bool) "join delay note present" true
          (List.mem_assoc "join delay" r.Experiments.notes));
    Alcotest.test_case "fig3 keeps the tree and adds a tunnel" `Quick (fun () ->
        let r = Experiments.fig3 () in
        Alcotest.(check (list string)) "links" [ "L1"; "L2"; "L3"; "L4" ] r.Experiments.links;
        Alcotest.(check int) "one tunnel" 1 (List.length r.Experiments.tunnels));
    Alcotest.test_case "fig4 keeps the home-rooted tree" `Quick (fun () ->
        let r = Experiments.fig4 () in
        Alcotest.(check (list string)) "links" [ "L1"; "L2"; "L3"; "L4" ] r.Experiments.links;
        Alcotest.(check bool) "no CoA tree" true
          (List.assoc "(CoA,G) states created" r.Experiments.notes = "0"));
    Alcotest.test_case "fig5 format constants" `Quick (fun () ->
        let text = Experiments.fig5 () in
        Alcotest.(check bool) "mentions 16*N" true
          (contains ~affix:"16*N" text));
    Alcotest.test_case "timer sweep shapes" `Quick (fun () ->
        (* Small trial count for speed; the shape must still hold. *)
        let rows = Experiments.timer_sweep ~trials:3 ~tquery_values:[ 125.0; 10.0 ] () in
        match rows with
        | [ slow; fast ] ->
          Alcotest.(check bool) "join delay shrinks" true
            (fast.Experiments.join_mean_s < slow.Experiments.join_mean_s);
          Alcotest.(check bool) "leave delay shrinks" true
            (fast.Experiments.leave_mean_s < slow.Experiments.leave_mean_s);
          Alcotest.(check bool) "signalling grows" true
            (fast.Experiments.mld_bytes_per_s > slow.Experiments.mld_bytes_per_s);
          Alcotest.(check bool) "leave bounded by TMLI" true
            (slow.Experiments.leave_mean_s <= 260.0)
        | _ -> Alcotest.fail "expected two rows");
    Alcotest.test_case "sender overhead grows with mobility (local sending)" `Quick
      (fun () ->
        match Experiments.sender_overhead ~move_counts:[ 0; 4 ] () with
        | [ still; moving ] ->
          Alcotest.(check bool) "more asserts" true
            (moving.Experiments.asserts > still.Experiments.asserts);
          Alcotest.(check bool) "more state" true
            (moving.Experiments.sg_states > still.Experiments.sg_states);
          Alcotest.(check bool) "more flood" true
            (moving.Experiments.flood_bytes_l5 > still.Experiments.flood_bytes_l5)
        | _ -> Alcotest.fail "expected two rows");
    Alcotest.test_case "tunnel convergence: unicast copy per member (4.3.2)" `Quick
      (fun () ->
        match Experiments.tunnel_convergence () with
        | [ local; tunnel ] ->
          Alcotest.(check bool) "everyone receives under both" true
            (List.for_all (fun rx -> rx > 300) local.Experiments.per_receiver_rx
             && List.for_all (fun rx -> rx > 300) tunnel.Experiments.per_receiver_rx);
          (* Two members: the tunnel approach puts exactly twice the
             packets on the shared foreign link. *)
          Alcotest.(check int) "2x packets" (2 * local.Experiments.foreign_link_packets)
            tunnel.Experiments.foreign_link_packets
        | _ -> Alcotest.fail "expected two rows");
    Alcotest.test_case "reverse tunnel removes sender movement costs" `Quick (fun () ->
        let spec =
          { Scenario.default_spec with approach = Approach.tunnel_to_home_agent }
        in
        match Experiments.sender_overhead ~spec ~move_counts:[ 0; 4 ] () with
        | [ still; moving ] ->
          Alcotest.(check int) "no extra state" still.Experiments.sg_states
            moving.Experiments.sg_states;
          Alcotest.(check int) "no extra flood" still.Experiments.flood_bytes_l5
            moving.Experiments.flood_bytes_l5
        | _ -> Alcotest.fail "expected two rows")
  ]

let comparison_tests =
  [ Alcotest.test_case "rows carry the paper's qualitative ordering" `Quick (fun () ->
        (* Use the pessimistic MLD config: the join-delay contrast is
           the paper's headline claim. *)
        let spec =
          { Scenario.default_spec with
            mld = { Mld.Mld_config.default with unsolicited_report_count = 0 } }
        in
        let row n = Comparison.run ~spec (Approach.of_number n) in
        let r1 = row 1 and r2 = row 2 in
        (* Approach 1: optimal routing, long join delay, no tunnel. *)
        Alcotest.(check (float 1e-9)) "1: stretch 1.0" 1.0 r1.Comparison.receiver_stretch;
        Alcotest.(check int) "1: no tunnel bytes" 0 r1.Comparison.tunnel_overhead_bytes;
        (* Approach 2: short join delay, tunnel overhead, stretch > 1. *)
        Alcotest.(check bool) "2: tunnel bytes" true (r2.Comparison.tunnel_overhead_bytes > 0);
        Alcotest.(check bool) "2: stretch > 1" true (r2.Comparison.receiver_stretch > 1.0);
        (match (r1.Comparison.join_delay_s, r2.Comparison.join_delay_s) with
         | Some j1, Some j2 ->
           Alcotest.(check bool) "join delay: 1 much worse than 2" true (j1 > 10.0 *. j2)
         | _, _ -> Alcotest.fail "missing join delays");
        Alcotest.(check bool) "1: rebuilds trees" true
          (r1.Comparison.sender_sg_states > r2.Comparison.sender_sg_states);
        Alcotest.(check bool) "2: HA loaded" true (r2.Comparison.ha_load > r1.Comparison.ha_load);
        (* Leave delay is an MLD property: similar for both, within
           TMLI. *)
        Alcotest.(check bool) "leave delay bounded" true
          (r1.Comparison.leave_delay_s <= 260.0 && r2.Comparison.leave_delay_s <= 260.0);
        Alcotest.(check bool) "leave delay significant" true
          (r1.Comparison.leave_delay_s > 30.0))
  ]

let printer_tests =
  [ Alcotest.test_case "config and load printers" `Quick (fun () ->
        let mentions needle text =
          let n = String.length needle in
          let rec go i = i + n <= String.length text && (String.sub text i n = needle || go (i + 1)) in
          go 0
        in
        let mld = Format.asprintf "%a" Mld.Mld_config.pp Mld.Mld_config.default in
        Alcotest.(check bool) "mld mentions TQuery" true (mentions "TQuery" mld);
        let pim = Format.asprintf "%a" Pimdm.Pim_config.pp Pimdm.Pim_config.default in
        Alcotest.(check bool) "pim mentions TPruneDel" true (mentions "TPruneDel" pim);
        let mip = Format.asprintf "%a" Mipv6.Mipv6_config.pp Mipv6.Mipv6_config.default in
        Alcotest.(check bool) "mipv6 mentions lifetime" true (mentions "lifetime" mip);
        let load = Load.create () in
        load.Load.encapsulations <- 3;
        let l = Format.asprintf "%a" Load.pp load in
        Alcotest.(check bool) "load mentions encap" true (mentions "encap=3" l);
        let a = Format.asprintf "%a" Approach.pp Approach.bidirectional_tunnel in
        Alcotest.(check bool) "approach mentions number" true (mentions "approach 2" a));
    Alcotest.test_case "metrics tables render" `Quick (fun () ->
        let s, m = stream_scenario () in
        Scenario.run_until s 60.0;
        let summary = Format.asprintf "%a" Metrics.pp_summary m in
        Alcotest.(check bool) "summary has data row" true (String.length summary > 50);
        let links = Format.asprintf "%a" (Metrics.pp_links m s.Scenario.net) () in
        Alcotest.(check bool) "per-link table has all six links" true
          (List.for_all
             (fun l ->
               let n = String.length l in
               let rec go i =
                 i + n <= String.length links && (String.sub links i n = l || go (i + 1))
               in
               go 0)
             [ "L1"; "L2"; "L3"; "L4"; "L5"; "L6" ]))
  ]

let determinism_tests =
  [ Alcotest.test_case "identical seeds give identical simulations" `Quick (fun () ->
        let run seed =
          let spec = { Scenario.default_spec with seed } in
          let s = Scenario.paper_figure1 spec in
          let m = Metrics.attach s.Scenario.net in
          Traffic.at s 5.0 (fun () -> Scenario.subscribe_receivers s group);
          ignore
            (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:30.0 ~until:200.0
               ~interval:0.5 ~bytes:500);
          Traffic.at s 60.0 (fun () ->
              Host_stack.move_to (Scenario.host s "R3") (Scenario.link s "L6"));
          Scenario.run_until s 200.0;
          let c = Metrics.control_counts m in
          ( List.map
              (fun r -> Host_stack.received_count (Scenario.host s r) ~group)
              [ "R1"; "R2"; "R3" ],
            Metrics.signalling_bytes m,
            (c.Metrics.hellos, c.queries, c.reports, c.prunes, c.joins, c.grafts,
             c.asserts),
            Engine.Sim.events_executed s.Scenario.sim,
            Metrics.join_delay (Scenario.host s "R3") ~group )
        in
        Alcotest.(check bool) "replay is bit-identical" true (run 42 = run 42);
        (* A different seed shifts the randomized MLD response delays
           but must not change what is delivered. *)
        let rx_of (rx, _, _, _, _) = rx in
        Alcotest.(check (list int)) "delivery is seed-independent" (rx_of (run 42))
          (rx_of (run 1234)))
  ]

let () =
  Alcotest.run "mmcast"
    [ ("approach", approach_tests);
      ("load", load_tests);
      ("scenario", scenario_tests);
      ("host stack", host_stack_tests @ edge_case_tests);
      ("forwarding", hop_limit_tests);
      ("router stack", router_stack_tests);
      ("metrics", metrics_tests);
      ("tree", tree_tests);
      ("experiments", experiment_tests);
      ("comparison", comparison_tests);
      ("determinism", determinism_tests);
      ("printers", printer_tests)
    ]
