(* End-to-end scenarios on the paper's Figure 1 network. *)

open Mmcast

let group = Scenario.group

(* Constant-bit-rate multicast source. *)
let cbr scenario host ~from_t ~until ~interval ~bytes =
  let sim = scenario.Scenario.sim in
  let rec tick () =
    if Engine.Time.compare (Engine.Sim.now sim) until < 0 then begin
      Host_stack.send_data host ~group ~bytes;
      ignore (Engine.Sim.schedule_after sim interval tick)
    end
  in
  ignore (Engine.Sim.schedule_at sim from_t tick)

let at scenario time f = ignore (Engine.Sim.schedule_at scenario.Scenario.sim time f)

let setup ?(spec = Scenario.default_spec) () =
  let scenario = Scenario.paper_figure1 spec in
  let metrics = Metrics.attach scenario.Scenario.net in
  at scenario 5.0 (fun () -> Scenario.subscribe_receivers scenario group);
  (scenario, metrics)

let source_addr scenario = Host_stack.home_address (Scenario.host scenario "S")

let check_tree_is_figure1 scenario =
  let links = Tree.links_carrying scenario ~source:(source_addr scenario) ~group in
  Alcotest.(check (list string))
    "distribution tree covers exactly the member links" [ "L1"; "L2"; "L3"; "L4" ] links

let test_initial_tree () =
  let scenario, _metrics = setup () in
  cbr scenario (Scenario.host scenario "S") ~from_t:30.0 ~until:100.0 ~interval:0.5
    ~bytes:500;
  Scenario.run_until scenario 100.0;
  check_tree_is_figure1 scenario;
  (* All three receivers get the stream. *)
  List.iter
    (fun r ->
      let received = Host_stack.received_count (Scenario.host scenario r) ~group in
      if received < 100 then
        Alcotest.failf "%s received only %d datagrams" r received)
    [ "R1"; "R2"; "R3" ]

let test_leaf_links_pruned_after_flood () =
  let scenario, metrics = setup () in
  cbr scenario (Scenario.host scenario "S") ~from_t:30.0 ~until:100.0 ~interval:0.5
    ~bytes:500;
  Scenario.run_until scenario 100.0;
  (* The initial flood reaches L5 and L6 once (paper: datagrams are
     flooded to all links), after which the empty leaves carry no
     data. *)
  let l5 = Metrics.data_bytes_on metrics (Scenario.link scenario "L5") in
  let l6 = Metrics.data_bytes_on metrics (Scenario.link scenario "L6") in
  Alcotest.(check bool) "L5 saw only the flood" true (l5 > 0 && l5 <= 2 * 540);
  Alcotest.(check bool) "L6 saw only the flood" true (l6 > 0 && l6 <= 2 * 540)

let test_receiver_moves_local_membership () =
  (* Figure 2: Receiver 3 moves from Link 4 to Link 6 under the local
     group membership approach; the tree grows a branch onto L6, and
     stale traffic keeps flowing on L4 until the MLD timer expires. *)
  let scenario, metrics = setup () in
  cbr scenario (Scenario.host scenario "S") ~from_t:30.0 ~until:350.0 ~interval:0.5
    ~bytes:500;
  let r3 = Scenario.host scenario "R3" in
  at scenario 60.0 (fun () -> Host_stack.move_to r3 (Scenario.link scenario "L6"));
  Scenario.run_until scenario 350.0;
  let links = Tree.links_carrying scenario ~source:(source_addr scenario) ~group in
  Alcotest.(check (list string)) "branch moved to L6" [ "L1"; "L2"; "L3"; "L6" ] links;
  (* Join delay: unsolicited reports make it sub-second. *)
  (match Metrics.join_delay r3 ~group with
   | None -> Alcotest.fail "R3 never received data after the move"
   | Some d ->
     if d > 2.0 then Alcotest.failf "join delay %.3fs too large for unsolicited reports" d);
  (* Leave delay: L4 kept carrying data after the move, bounded by
     TMLI = 260 s. *)
  (match Metrics.last_data_tx metrics (Scenario.link scenario "L4") ~group with
   | None -> Alcotest.fail "no data ever seen on L4"
   | Some last ->
     let leave_delay = last -. 60.0 in
     if leave_delay < 30.0 then
       Alcotest.failf "leave delay %.1fs suspiciously small" leave_delay;
     if leave_delay > 260.0 then
       Alcotest.failf "leave delay %.1fs exceeds the TMLI bound" leave_delay);
  (* R3 keeps receiving. *)
  Alcotest.(check bool) "R3 received data on L6" true
    (Host_stack.received_count r3 ~group > 400)

let test_receiver_moves_bidirectional_tunnel () =
  (* Figure 3: with the tunnel approach the tree does not change; data
     reaches R3 through its home agent D. *)
  let spec = { Scenario.default_spec with approach = Approach.bidirectional_tunnel } in
  let scenario, _metrics = setup ~spec () in
  cbr scenario (Scenario.host scenario "S") ~from_t:30.0 ~until:120.0 ~interval:0.5
    ~bytes:500;
  let r3 = Scenario.host scenario "R3" in
  (* One duplicate is expected from the initial flood (both B and C
     forward the first datagram before the Assert election); what must
     not happen is further duplication through the tunnel. *)
  let dups_before_move = ref 0 in
  at scenario 60.0 (fun () ->
      dups_before_move := Host_stack.duplicate_count r3 ~group;
      Host_stack.move_to r3 (Scenario.link scenario "L1"));
  Scenario.run_until scenario 120.0;
  let links = Tree.links_carrying scenario ~source:(source_addr scenario) ~group in
  Alcotest.(check (list string)) "tree unchanged" [ "L1"; "L2"; "L3"; "L4" ] links;
  let tunnels = Tree.tunnels_carrying scenario ~source:(source_addr scenario) ~group in
  Alcotest.(check (list string)) "tunnel to R3 active"
    [ Ipv6.Addr.to_string (Host_stack.home_address r3) ]
    tunnels;
  (match Metrics.join_delay r3 ~group with
   | None -> Alcotest.fail "R3 never received data after the move"
   | Some d ->
     if d > 1.5 then Alcotest.failf "tunnel join delay %.3fs should be small" d);
  Alcotest.(check bool) "R3 received data via tunnel" true
    (Host_stack.received_count r3 ~group > 150);
  Alcotest.(check int) "tunnel adds no duplicate delivery" !dups_before_move
    (Host_stack.duplicate_count r3 ~group)

let test_sender_moves_local_sending () =
  (* Section 4.2.2 A: the sender moves; a brand-new source-rooted tree
     is built for its care-of address, and the old (S,G) state
     lingers. *)
  let scenario, metrics = setup () in
  let s = Scenario.host scenario "S" in
  cbr scenario s ~from_t:30.0 ~until:200.0 ~interval:0.5 ~bytes:500;
  at scenario 100.0 (fun () -> Host_stack.move_to s (Scenario.link scenario "L6"));
  Scenario.run_until scenario 200.0;
  let coa = Host_stack.current_source_address s in
  Alcotest.(check bool) "sender has a care-of address" false
    (Ipv6.Addr.equal coa (Host_stack.home_address s));
  (* New tree rooted on L6 reaches the receivers. *)
  let links = Tree.links_carrying scenario ~source:coa ~group in
  Alcotest.(check bool) "new tree covers member links" true
    (List.for_all (fun l -> List.mem l links) [ "L1"; "L2"; "L6" ]);
  (* Old state is still around (data timeout has not struck). *)
  let old_entries =
    List.concat_map
      (fun (_, r) -> Pimdm.Pim_router.entries (Router_stack.pim r))
      scenario.Scenario.routers
  in
  let has_old =
    List.exists (fun (s_, _) -> Ipv6.Addr.equal s_ (Host_stack.home_address s)) old_entries
  in
  Alcotest.(check bool) "old (S,G) state lingers" true has_old;
  (* Receivers keep receiving from the new tree. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r ^ " keeps receiving after sender handoff")
        true
        (Host_stack.received_count (Scenario.host scenario r) ~group > 250))
    [ "R1"; "R2" ];
  ignore metrics

let test_sender_moves_reverse_tunnel () =
  (* Figure 4: the sender reverse-tunnels to its home agent; the
     distribution tree stays rooted at the home link and no new flood
     happens. *)
  let spec = { Scenario.default_spec with approach = Approach.tunnel_to_home_agent } in
  let scenario, metrics = setup ~spec () in
  let s = Scenario.host scenario "S" in
  cbr scenario s ~from_t:30.0 ~until:200.0 ~interval:0.5 ~bytes:500;
  at scenario 100.0 (fun () -> Host_stack.move_to s (Scenario.link scenario "L6"));
  Scenario.run_until scenario 200.0;
  (* The tree for the home-address source persists. *)
  let links = Tree.links_carrying scenario ~source:(Host_stack.home_address s) ~group in
  Alcotest.(check (list string)) "tree still rooted at home" [ "L1"; "L2"; "L3"; "L4" ] links;
  (* No (S,G) state for the care-of address anywhere. *)
  let coa = Host_stack.current_source_address s in
  let coa_entries =
    List.concat_map
      (fun (_, r) -> Pimdm.Pim_router.entries (Router_stack.pim r))
      scenario.Scenario.routers
    |> List.filter (fun (s_, _) -> Ipv6.Addr.equal s_ coa)
  in
  Alcotest.(check int) "no tree for the care-of address" 0 (List.length coa_entries);
  (* Tunnel overhead exists after the move. *)
  Alcotest.(check bool) "tunnel overhead observed" true
    (Metrics.bytes metrics Metrics.Tunnel_overhead > 0);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r ^ " keeps receiving via reverse tunnel")
        true
        (Host_stack.received_count (Scenario.host scenario r) ~group > 250))
    [ "R1"; "R2"; "R3" ]

let test_assert_on_stale_source () =
  (* Section 4.3: the sender moves to an on-tree link; until movement
     detection completes it sends with the stale source address, which
     makes the on-tree routers see data on an outgoing interface and
     start the Assert process. *)
  let spec =
    { Scenario.default_spec with
      mipv6 = { Mipv6.Mipv6_config.default with movement_detection_delay = 2.0 } }
  in
  let scenario, metrics = setup ~spec () in
  let s = Scenario.host scenario "S" in
  cbr scenario s ~from_t:30.0 ~until:150.0 ~interval:0.5 ~bytes:500;
  at scenario 100.0 (fun () -> Host_stack.move_to s (Scenario.link scenario "L2"));
  Scenario.run_until scenario 150.0;
  let counts = Metrics.control_counts metrics in
  Alcotest.(check bool) "asserts were triggered" true (counts.Metrics.asserts > 0)

let test_prune_join_override () =
  (* Section 3.1: when D prunes L3 (its last receiver left), E — which
     still needs the traffic — answers with a Join within TPruneDel, so
     forwarding on L3 never stops. *)
  let scenario, metrics = setup () in
  cbr scenario (Scenario.host scenario "S") ~from_t:30.0 ~until:340.0 ~interval:0.5
    ~bytes:500;
  let r3 = Scenario.host scenario "R3" in
  at scenario 60.0 (fun () -> Host_stack.move_to r3 (Scenario.link scenario "L6"));
  (* After the MLD timer on L4 expires (~t=275), D wants to prune L3;
     E must override because R3 now sits behind it. *)
  Scenario.run_until scenario 340.0;
  let counts = Metrics.control_counts metrics in
  Alcotest.(check bool) "prunes happened" true (counts.Metrics.prunes > 0);
  Alcotest.(check bool) "join override happened" true (counts.Metrics.joins > 0);
  (* R3 still receives at the end. *)
  let rx_before = Host_stack.received_count r3 ~group in
  cbr scenario (Scenario.host scenario "S") ~from_t:341.0 ~until:345.0 ~interval:0.5
    ~bytes:500;
  Scenario.run_until scenario 346.0;
  Alcotest.(check bool) "stream still flowing after prune fight" true
    (Host_stack.received_count r3 ~group > rx_before)

let test_binding_lifecycle () =
  let scenario, _metrics = setup () in
  let r3 = Scenario.host scenario "R3" in
  let d = Scenario.router scenario "D" in
  at scenario 10.0 (fun () -> Host_stack.move_to r3 (Scenario.link scenario "L6"));
  Scenario.run_until scenario 20.0;
  (match Router_stack.binding_for d (Host_stack.home_address r3) with
   | None -> Alcotest.fail "home agent D has no binding for R3"
   | Some entry ->
     Alcotest.(check bool) "care-of on L6" true
       (Ipv6.Addr.equal entry.Mipv6.Binding_cache.care_of
          (Host_stack.current_source_address r3)));
  (* Returning home deregisters. *)
  at scenario 30.0 (fun () -> Host_stack.move_to r3 (Scenario.link scenario "L4"));
  Scenario.run_until scenario 40.0;
  Alcotest.(check bool) "binding removed after returning home" true
    (Router_stack.binding_for d (Host_stack.home_address r3) = None);
  Alcotest.(check bool) "R3 back home and detected" true (Host_stack.at_home r3)

let test_binding_refresh_keeps_tunnel_alive () =
  (* Stay away longer than the binding lifetime (256 s): periodic
     Binding Updates must keep the tunnel (and group delivery) alive. *)
  let spec = { Scenario.default_spec with approach = Approach.bidirectional_tunnel } in
  let scenario, _metrics = setup ~spec () in
  let r3 = Scenario.host scenario "R3" in
  cbr scenario (Scenario.host scenario "S") ~from_t:30.0 ~until:590.0 ~interval:1.0
    ~bytes:500;
  at scenario 60.0 (fun () -> Host_stack.move_to r3 (Scenario.link scenario "L6"));
  Scenario.run_until scenario 560.0;
  let before = Host_stack.received_count r3 ~group in
  Scenario.run_until scenario 590.0;
  Alcotest.(check bool) "still receiving 8+ minutes after the move" true
    (Host_stack.received_count r3 ~group > before);
  let d = Scenario.router scenario "D" in
  Alcotest.(check bool) "binding alive" true
    (Router_stack.binding_for d (Host_stack.home_address r3) <> None)

let test_tunnel_mld_mode () =
  (* Section 4.3.2's first solution: the home agent is a PIM router
     and MLD runs through the tunnel — Queries from the home agent,
     Reports from the mobile host, full timer machinery. *)
  let spec =
    { Scenario.default_spec with
      approach = Approach.bidirectional_tunnel;
      ha_mode = Router_stack.Ha_pim_tunnel_mld }
  in
  let scenario, metrics = setup ~spec () in
  let r3 = Scenario.host scenario "R3" in
  cbr scenario (Scenario.host scenario "S") ~from_t:30.0 ~until:680.0 ~interval:1.0
    ~bytes:400;
  at scenario 60.0 (fun () -> Host_stack.move_to r3 (Scenario.link scenario "L6"));
  Scenario.run_until scenario 400.0;
  (* Delivery through the tunnel works... *)
  Alcotest.(check bool) "receives via tunnel-MLD membership" true
    (Host_stack.received_count r3 ~group > 250);
  (* ...the home agent queried through the tunnel, and the host
     reported back through it (tunnelled MLD = encapsulated
     signalling). *)
  let counts = Metrics.control_counts metrics in
  Alcotest.(check bool) "queries flowed" true (counts.Metrics.queries > 10);
  Alcotest.(check bool) "tunnel overhead includes signalling" true
    (Metrics.bytes metrics Metrics.Tunnel_overhead
     > Metrics.packets metrics Metrics.Data_tunnelled * 40);
  (* The membership is refreshed by Reports answering tunnel Queries,
     so it outlives TMLI. *)
  let d = Scenario.router scenario "D" in
  (match Router_stack.tunnel_iface_of d (Host_stack.home_address r3) with
   | Some viface ->
     Alcotest.(check bool) "viface member" true
       (Pimdm.Pim_router.is_forwarding (Router_stack.pim d)
          ~source:(Host_stack.home_address (Scenario.host scenario "S"))
          ~group ~iface:viface)
   | None -> Alcotest.fail "no tunnel iface at D");
  (* Now the host dies silently: the home agent's tunnel membership
     lapses after TMLI (and the binding after its lifetime), so
     tunnelling must have fully stopped by t = 400 + max(TMLI,
     lifetime) + slack. *)
  Host_stack.stop r3;
  Scenario.run_until scenario 620.0;
  let tunnel_pkts_at_620 = Metrics.packets metrics Metrics.Data_tunnelled in
  Scenario.run_until scenario 680.0;
  Alcotest.(check int) "tunnelling fully dried up" tunnel_pkts_at_620
    (Metrics.packets metrics Metrics.Data_tunnelled)

let test_approach_mix_profiles () =
  (* Approaches 3 and 4 are the mixed rows of Table 1. *)
  let spec =
    { Scenario.default_spec with
      mld = { Mld.Mld_config.default with unsolicited_report_count = 0 } }
  in
  let r3_ = Comparison.run ~spec Approach.tunnel_to_home_agent in
  let r4 = Comparison.run ~spec Approach.tunnel_from_home_agent in
  (* Approach 3: receiver behaves like approach 1 (local: optimal but
     slow joins), sender like approach 2 (tunnel: no rebuild). *)
  Alcotest.(check (float 1e-9)) "3: receiver stretch optimal" 1.0
    r3_.Comparison.receiver_stretch;
  Alcotest.(check bool) "3: long join delay" true
    (match r3_.Comparison.join_delay_s with
     | Some d -> d > 10.0
     | None -> false);
  Alcotest.(check bool) "3: sender keeps one tree" true
    (r3_.Comparison.sender_sg_states <= 5);
  Alcotest.(check bool) "3: sender stretch > 1" true (r3_.Comparison.sender_stretch > 1.0);
  (* Approach 4: the opposite mix. *)
  Alcotest.(check bool) "4: receiver stretch > 1" true
    (r4.Comparison.receiver_stretch > 1.0);
  Alcotest.(check bool) "4: short join delay" true
    (match r4.Comparison.join_delay_s with
     | Some d -> d < 2.0
     | None -> false);
  Alcotest.(check bool) "4: sender rebuilds trees" true
    (r4.Comparison.sender_sg_states >= 10);
  Alcotest.(check (float 1e-9)) "4: sender stretch optimal" 1.0 r4.Comparison.sender_stretch

let test_two_groups_independent_trees () =
  (* Two groups with different membership: each (S,G) pair gets its own
     tree and only its subscribers receive it. *)
  let group2 = Ipv6.Addr.of_string "ff0e::2:2" in
  let scenario, _ = setup () in
  let s = Scenario.host scenario "S" in
  at scenario 5.0 (fun () ->
      (* R1 takes both, R2 only group, R3 only group2 (on top of the
         subscribe_receivers from setup, which joined everyone to
         group). *)
      Host_stack.unsubscribe (Scenario.host scenario "R3") group;
      Host_stack.subscribe (Scenario.host scenario "R1") group2;
      Host_stack.subscribe (Scenario.host scenario "R3") group2);
  let cbr2 host ~from_t ~until ~interval ~bytes =
    let sim = scenario.Scenario.sim in
    let rec tick () =
      if Engine.Time.compare (Engine.Sim.now sim) until < 0 then begin
        Host_stack.send_data host ~group:group2 ~bytes;
        ignore (Engine.Sim.schedule_after sim interval tick)
      end
    in
    ignore (Engine.Sim.schedule_at sim from_t tick)
  in
  cbr scenario s ~from_t:30.0 ~until:150.0 ~interval:0.5 ~bytes:300;
  cbr2 s ~from_t:30.0 ~until:150.0 ~interval:0.5 ~bytes:300;
  Scenario.run_until scenario 150.0;
  let rx name g = Host_stack.received_count (Scenario.host scenario name) ~group:g in
  Alcotest.(check bool) "R1 gets both" true (rx "R1" group > 200 && rx "R1" group2 > 200);
  Alcotest.(check bool) "R2 gets only group" true (rx "R2" group > 200 && rx "R2" group2 = 0);
  Alcotest.(check bool) "R3 gets only group2" true (rx "R3" group2 > 200 && rx "R3" group <= 2);
  (* Independent trees: the group tree ends at L2 (no member beyond),
     the group2 tree still reaches L4. *)
  let source = Host_stack.home_address s in
  Alcotest.(check (list string)) "group tree shrank" [ "L1"; "L2" ]
    (Tree.links_carrying scenario ~source ~group);
  Alcotest.(check (list string)) "group2 tree reaches R3" [ "L1"; "L2"; "L3"; "L4" ]
    (Tree.links_carrying scenario ~source ~group:group2)

let test_many_to_many () =
  (* Two senders, one group (the paper's many-to-many motivation):
     each source roots its own tree, everyone receives both streams. *)
  let scenario, _ = setup () in
  let s = Scenario.host scenario "S" in
  let r1 = Scenario.host scenario "R1" in
  (* R1 is also a sender; subscribe S so both directions are checked. *)
  at scenario 5.0 (fun () -> Host_stack.subscribe s group);
  cbr scenario s ~from_t:30.0 ~until:150.0 ~interval:0.5 ~bytes:300;
  cbr scenario r1 ~from_t:31.0 ~until:150.0 ~interval:0.5 ~bytes:300;
  Scenario.run_until scenario 150.0;
  (* 240 datagrams per sender; receivers on other links get both
     streams, the senders get each other's. *)
  Alcotest.(check bool) "R2 got both streams" true
    (Host_stack.received_count (Scenario.host scenario "R2") ~group > 430);
  Alcotest.(check bool) "R3 got both streams" true
    (Host_stack.received_count (Scenario.host scenario "R3") ~group > 430);
  Alcotest.(check bool) "S hears R1" true (Host_stack.received_count s ~group > 200);
  (* Two source-rooted trees exist. *)
  let trees source =
    List.length (Tree.forwarding_edges scenario ~source ~group)
  in
  Alcotest.(check bool) "both trees have forwarding state" true
    (trees (Host_stack.home_address s) > 0 && trees (Host_stack.home_address r1) > 0)

let () =
  Alcotest.run "integration"
    [ ( "figure1",
        [ Alcotest.test_case "initial distribution tree" `Quick test_initial_tree;
          Alcotest.test_case "leaf links pruned after flood" `Quick
            test_leaf_links_pruned_after_flood ] );
      ( "mobile receiver",
        [ Alcotest.test_case "local membership (figure 2)" `Quick
            test_receiver_moves_local_membership;
          Alcotest.test_case "bidirectional tunnel (figure 3)" `Quick
            test_receiver_moves_bidirectional_tunnel ] );
      ( "mobile sender",
        [ Alcotest.test_case "local sending rebuilds tree" `Quick
            test_sender_moves_local_sending;
          Alcotest.test_case "reverse tunnel preserves tree (figure 4)" `Quick
            test_sender_moves_reverse_tunnel;
          Alcotest.test_case "stale source triggers asserts" `Quick
            test_assert_on_stale_source ] );
      ( "pim dynamics",
        [ Alcotest.test_case "prune + join override" `Quick test_prune_join_override ] );
      ( "mobile ipv6",
        [ Alcotest.test_case "binding lifecycle" `Quick test_binding_lifecycle;
          Alcotest.test_case "binding refresh keeps tunnel" `Quick
            test_binding_refresh_keeps_tunnel_alive ] );
      ( "tunnel mld mode",
        [ Alcotest.test_case "MLD through the tunnel (4.3.2 solution 1)" `Quick
            test_tunnel_mld_mode ] );
      ( "approach mixes",
        [ Alcotest.test_case "approaches 3 and 4 combine the halves" `Quick
            test_approach_mix_profiles ] );
      ( "multi group",
        [ Alcotest.test_case "two groups, independent trees" `Quick
            test_two_groups_independent_trees;
          Alcotest.test_case "many-to-many: two senders, one group" `Quick
            test_many_to_many ] )
    ]
