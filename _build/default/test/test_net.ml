(* Unit and property tests for the topology / routing / link-layer
   substrate. *)

open Ipv6
open Net
module Node_id = Ids.Node_id
module Link_id = Ids.Link_id

(* A small fixture mirroring the paper's network shape:
   L1{A} - L2{A,B,C} - L3{B,C,D,E} - L4{D} L5{D} L6{E}, hosts s on L1,
   h4 on L4. *)
type fixture = {
  topo : Topology.t;
  a : Node_id.t;
  b : Node_id.t;
  c : Node_id.t;
  d : Node_id.t;
  e : Node_id.t;
  s : Node_id.t;
  h4 : Node_id.t;
  l1 : Link_id.t;
  l2 : Link_id.t;
  l3 : Link_id.t;
  l4 : Link_id.t;
  l5 : Link_id.t;
  l6 : Link_id.t;
}

let make_fixture () =
  let topo = Topology.create () in
  let link n = Topology.add_link topo ~name:(Printf.sprintf "L%d" n)
      ~prefix:(Prefix.of_string (Printf.sprintf "2001:db8:%d::/64" n)) () in
  let l1 = link 1 and l2 = link 2 and l3 = link 3 in
  let l4 = link 4 and l5 = link 5 and l6 = link 6 in
  let router n = Topology.add_node topo ~name:n ~kind:Topology.Router in
  let a = router "A" and b = router "B" and c = router "C" in
  let d = router "D" and e = router "E" in
  let s = Topology.add_node topo ~name:"S" ~kind:Topology.Host in
  let h4 = Topology.add_node topo ~name:"H4" ~kind:Topology.Host in
  List.iter (fun (n, l) -> Topology.attach topo n l)
    [ (a, l1); (a, l2); (b, l2); (b, l3); (c, l2); (c, l3);
      (d, l3); (d, l4); (d, l5); (e, l3); (e, l6); (s, l1); (h4, l4) ];
  { topo; a; b; c; d; e; s; h4; l1; l2; l3; l4; l5; l6 }

let topology_tests =
  [ Alcotest.test_case "names and kinds" `Quick (fun () ->
        let f = make_fixture () in
        Alcotest.(check string) "name" "A" (Topology.node_name f.topo f.a);
        Alcotest.(check bool) "router" true (Topology.node_kind f.topo f.a = Topology.Router);
        Alcotest.(check bool) "host" true (Topology.node_kind f.topo f.s = Topology.Host);
        Alcotest.(check string) "link name" "L3" (Topology.link_name f.topo f.l3));
    Alcotest.test_case "find by name" `Quick (fun () ->
        let f = make_fixture () in
        Alcotest.(check bool) "node" true (Topology.find_node_by_name f.topo "D" = Some f.d);
        Alcotest.(check bool) "missing node" true
          (Topology.find_node_by_name f.topo "Z" = None);
        Alcotest.(check bool) "link" true (Topology.find_link_by_name f.topo "L5" = Some f.l5));
    Alcotest.test_case "attachment queries" `Quick (fun () ->
        let f = make_fixture () in
        Alcotest.(check bool) "attached" true (Topology.is_attached f.topo f.d f.l4);
        Alcotest.(check bool) "not attached" false (Topology.is_attached f.topo f.a f.l4);
        Alcotest.(check int) "nodes on L3" 4 (List.length (Topology.nodes_on_link f.topo f.l3));
        Alcotest.(check int) "routers on L2" 3
          (List.length (Topology.routers_on_link f.topo f.l2));
        Alcotest.(check int) "links of D" 3 (List.length (Topology.links_of_node f.topo f.d)));
    Alcotest.test_case "routers_on_link excludes hosts" `Quick (fun () ->
        let f = make_fixture () in
        let routers = Topology.routers_on_link f.topo f.l1 in
        Alcotest.(check (list string)) "only A" [ "A" ]
          (List.map (Topology.node_name f.topo) routers));
    Alcotest.test_case "detach then attach elsewhere (handoff)" `Quick (fun () ->
        let f = make_fixture () in
        let v0 = Topology.version f.topo in
        Topology.detach f.topo f.h4 f.l4;
        Topology.attach f.topo f.h4 f.l6;
        Alcotest.(check bool) "off old" false (Topology.is_attached f.topo f.h4 f.l4);
        Alcotest.(check bool) "on new" true (Topology.is_attached f.topo f.h4 f.l6);
        Alcotest.(check bool) "version bumped" true (Topology.version f.topo > v0));
    Alcotest.test_case "attach/detach idempotent" `Quick (fun () ->
        let f = make_fixture () in
        Topology.attach f.topo f.h4 f.l4;
        let v = Topology.version f.topo in
        Topology.attach f.topo f.h4 f.l4;
        Alcotest.(check int) "no version change" v (Topology.version f.topo);
        Topology.detach f.topo f.h4 f.l6;
        Alcotest.(check int) "detach of unattached is a no-op" v (Topology.version f.topo));
    Alcotest.test_case "autoconfigured addresses" `Quick (fun () ->
        let f = make_fixture () in
        let addr = Topology.address_on f.topo f.d f.l4 in
        Alcotest.(check bool) "on the link prefix" true
          (Prefix.contains (Topology.link_prefix f.topo f.l4) addr);
        (* Same interface id on every link. *)
        let addr5 = Topology.address_on f.topo f.d f.l5 in
        Alcotest.(check bool) "same iid" true
          (Int64.equal (Addr.lo addr) (Addr.lo addr5));
        let ll = Topology.link_local f.topo f.d in
        Alcotest.(check bool) "link local prefix" true (Addr.is_link_local_unicast ll));
    Alcotest.test_case "link_of_address" `Quick (fun () ->
        let f = make_fixture () in
        Alcotest.(check bool) "L4 address" true
          (Topology.link_of_address f.topo (Addr.of_string "2001:db8:4::42") = Some f.l4);
        Alcotest.(check bool) "unknown prefix" true
          (Topology.link_of_address f.topo (Addr.of_string "2001:dead::1") = None));
    Alcotest.test_case "duplicate prefix rejected" `Quick (fun () ->
        let f = make_fixture () in
        match
          Topology.add_link f.topo ~name:"dup" ~prefix:(Prefix.of_string "2001:db8:4::/64") ()
        with
        | _ -> Alcotest.fail "expected rejection"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "prefix longer than /64 rejected" `Quick (fun () ->
        let f = make_fixture () in
        match
          Topology.add_link f.topo ~name:"long" ~prefix:(Prefix.of_string "2001:db8:9::/96") ()
        with
        | _ -> Alcotest.fail "expected rejection"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "distinct interface ids" `Quick (fun () ->
        let f = make_fixture () in
        let iids =
          List.map (Topology.interface_id f.topo) (Topology.nodes f.topo)
          |> List.sort_uniq Int64.compare
        in
        Alcotest.(check int) "all unique" (List.length (Topology.nodes f.topo))
          (List.length iids))
  ]

let routing_tests =
  [ Alcotest.test_case "distances from a host" `Quick (fun () ->
        let f = make_fixture () in
        let r = Routing.create f.topo in
        let dist l = Routing.distance_to_link r ~from:f.s l in
        Alcotest.(check (option int)) "own link" (Some 0) (dist f.l1);
        Alcotest.(check (option int)) "L2" (Some 1) (dist f.l2);
        Alcotest.(check (option int)) "L3" (Some 2) (dist f.l3);
        Alcotest.(check (option int)) "L4" (Some 3) (dist f.l4);
        Alcotest.(check (option int)) "L6" (Some 3) (dist f.l6));
    Alcotest.test_case "decide: deliver, forward, unreachable" `Quick (fun () ->
        let f = make_fixture () in
        let r = Routing.create f.topo in
        (match Routing.decide r ~at:f.a ~dst:(Topology.address_on f.topo f.s f.l1) with
         | Routing.Deliver_on_link l -> Alcotest.(check bool) "on L1" true (Link_id.equal l f.l1)
         | Routing.Forward _ | Routing.Unreachable -> Alcotest.fail "expected delivery");
        (match Routing.decide r ~at:f.a ~dst:(Addr.of_string "2001:db8:4::99") with
         | Routing.Forward { out_link; next_hop } ->
           Alcotest.(check bool) "via L2" true (Link_id.equal out_link f.l2);
           Alcotest.(check bool) "via B or C" true
             (Node_id.equal next_hop f.b || Node_id.equal next_hop f.c)
         | Routing.Deliver_on_link _ | Routing.Unreachable -> Alcotest.fail "expected forward");
        match Routing.decide r ~at:f.a ~dst:(Addr.of_string "2001:dead::1") with
        | Routing.Unreachable -> ()
        | Routing.Deliver_on_link _ | Routing.Forward _ -> Alcotest.fail "expected unreachable");
    Alcotest.test_case "next hop is never the deciding node" `Quick (fun () ->
        let f = make_fixture () in
        let r = Routing.create f.topo in
        List.iter
          (fun at ->
            List.iter
              (fun link ->
                let dst = Prefix.append_interface_id (Topology.link_prefix f.topo link) 99L in
                match Routing.decide r ~at ~dst with
                | Routing.Forward { next_hop; _ } ->
                  Alcotest.(check bool) "not self" false (Node_id.equal next_hop at)
                | Routing.Deliver_on_link _ | Routing.Unreachable -> ())
              (Topology.links f.topo))
          (Topology.nodes f.topo));
    Alcotest.test_case "path_to_link structure" `Quick (fun () ->
        let f = make_fixture () in
        let r = Routing.create f.topo in
        Alcotest.(check (option (list string))) "attached: empty" (Some [])
          (Option.map
             (List.map (Topology.link_name f.topo))
             (Routing.path_to_link r ~from:f.s f.l1));
        Alcotest.(check (option (list string))) "S to L4" (Some [ "L1"; "L2"; "L3"; "L4" ])
          (Option.map
             (List.map (Topology.link_name f.topo))
             (Routing.path_to_link r ~from:f.s f.l4)));
    Alcotest.test_case "path length = distance + 1" `Quick (fun () ->
        let f = make_fixture () in
        let r = Routing.create f.topo in
        List.iter
          (fun from ->
            List.iter
              (fun link ->
                match (Routing.distance_to_link r ~from link, Routing.path_to_link r ~from link) with
                | Some 0, Some [] -> ()
                | Some d, Some path when d >= 1 ->
                  Alcotest.(check int)
                    (Format.asprintf "%a -> %a" Node_id.pp from Link_id.pp link)
                    (d + 1) (List.length path)
                | None, None -> ()
                | _, _ -> Alcotest.fail "distance and path disagree")
              (Topology.links f.topo))
          (Topology.nodes f.topo));
    Alcotest.test_case "rpf toward a source" `Quick (fun () ->
        let f = make_fixture () in
        let r = Routing.create f.topo in
        let source = Topology.address_on f.topo f.s f.l1 in
        (match Routing.rpf r ~at:f.a ~source with
         | Some (l, None) -> Alcotest.(check bool) "direct on L1" true (Link_id.equal l f.l1)
         | Some (_, Some _) | None -> Alcotest.fail "A should reach S directly");
        (match Routing.rpf r ~at:f.d ~source with
         | Some (l, Some up) ->
           Alcotest.(check bool) "via L3" true (Link_id.equal l f.l3);
           Alcotest.(check bool) "via B or C" true
             (Node_id.equal up f.b || Node_id.equal up f.c)
         | Some (_, None) | None -> Alcotest.fail "D should go via L3");
        match Routing.rpf r ~at:f.d ~source:(Addr.of_string "2001:dead::1") with
        | None -> ()
        | Some _ -> Alcotest.fail "unroutable source");
    Alcotest.test_case "tables follow topology changes" `Quick (fun () ->
        let f = make_fixture () in
        let r = Routing.create f.topo in
        Alcotest.(check (option int)) "L6 at 3 hops" (Some 3)
          (Routing.distance_to_link r ~from:f.s f.l6);
        (* Link E off L3: L6 becomes unreachable. *)
        Topology.detach f.topo f.e f.l3;
        Alcotest.(check (option int)) "L6 unreachable" None
          (Routing.distance_to_link r ~from:f.s f.l6);
        Topology.attach f.topo f.e f.l3;
        Alcotest.(check (option int)) "L6 back" (Some 3)
          (Routing.distance_to_link r ~from:f.s f.l6));
    Alcotest.test_case "hosts do not provide transit" `Quick (fun () ->
        let topo = Topology.create () in
        let la = Topology.add_link topo ~name:"A" ~prefix:(Prefix.of_string "2001:db8:a::/64") () in
        let lb = Topology.add_link topo ~name:"B" ~prefix:(Prefix.of_string "2001:db8:b::/64") () in
        let h = Topology.add_node topo ~name:"h" ~kind:Topology.Host in
        let x = Topology.add_node topo ~name:"x" ~kind:Topology.Host in
        Topology.attach topo h la;
        Topology.attach topo h lb;
        Topology.attach topo x la;
        let r = Routing.create topo in
        (* x can only reach B through h, but h is a host. *)
        Alcotest.(check (option int)) "no transit through host" None
          (Routing.distance_to_link r ~from:x lb))
  ]

(* ---- link layer ---- *)

let data ~bytes = Packet.Data { stream_id = 0; seq = 0; bytes }

let make_net () =
  let sim = Engine.Sim.create () in
  let f = make_fixture () in
  (sim, f, Network.create sim f.topo)

let network_tests =
  [ Alcotest.test_case "delivery after link delay" `Quick (fun () ->
        let sim, f, net = make_net () in
        let got = ref [] in
        Network.set_handler net f.b (fun ~link ~from p ->
            got := (Engine.Sim.now sim, link, from, p) :: !got);
        let p = Packet.make ~src:Addr.loopback ~dst:Addr.loopback (data ~bytes:100) in
        Network.transmit net ~from:f.a ~link:f.l2 (Network.To_node f.b) p;
        Engine.Sim.run sim;
        match !got with
        | [ (at, link, from, _) ] ->
          (* 5 ms propagation + 140 B * 8 / 10 Mbit/s serialization. *)
          Alcotest.(check (float 1e-9)) "after 5 ms + tx time" 0.005112 at;
          Alcotest.(check bool) "on L2" true (Link_id.equal link f.l2);
          Alcotest.(check bool) "from A" true (Node_id.equal from f.a)
        | other -> Alcotest.failf "expected one delivery, got %d" (List.length other));
    Alcotest.test_case "To_all excludes the sender" `Quick (fun () ->
        let sim, f, net = make_net () in
        let hits = ref [] in
        List.iter
          (fun n ->
            Network.set_handler net n (fun ~link:_ ~from:_ _ ->
                hits := Topology.node_name f.topo n :: !hits))
          [ f.a; f.b; f.c ];
        let p = Packet.make ~src:Addr.loopback ~dst:Addr.all_nodes (data ~bytes:64) in
        Network.transmit net ~from:f.a ~link:f.l2 Network.To_all p;
        Engine.Sim.run sim;
        Alcotest.(check (list string)) "B and C only" [ "B"; "C" ]
          (List.sort String.compare !hits));
    Alcotest.test_case "unicast reaches only the target" `Quick (fun () ->
        let sim, f, net = make_net () in
        let hits = ref 0 in
        Network.set_handler net f.b (fun ~link:_ ~from:_ _ -> incr hits);
        Network.set_handler net f.c (fun ~link:_ ~from:_ _ -> Alcotest.fail "C got unicast to B");
        let p = Packet.make ~src:Addr.loopback ~dst:Addr.loopback (data ~bytes:64) in
        Network.transmit net ~from:f.a ~link:f.l2 (Network.To_node f.b) p;
        Engine.Sim.run sim;
        Alcotest.(check int) "one delivery" 1 !hits);
    Alcotest.test_case "transmit from a detached node is dropped" `Quick (fun () ->
        let sim, f, net = make_net () in
        let p = Packet.make ~src:Addr.loopback ~dst:Addr.loopback (data ~bytes:64) in
        Network.transmit net ~from:f.a ~link:f.l4 (Network.To_node f.d) p;
        Engine.Sim.run sim;
        Alcotest.(check int) "drop counted" 1 (Network.drops net);
        Alcotest.(check int) "nothing on the wire" 0 (Network.link_stats net f.l4).Network.packets);
    Alcotest.test_case "receiver that detaches in flight misses the frame" `Quick (fun () ->
        let sim, f, net = make_net () in
        let hits = ref 0 in
        Network.set_handler net f.h4 (fun ~link:_ ~from:_ _ -> incr hits);
        let p = Packet.make ~src:Addr.loopback ~dst:Addr.all_nodes (data ~bytes:64) in
        Network.transmit net ~from:f.d ~link:f.l4 Network.To_all p;
        (* Detach before the 5 ms delivery. *)
        ignore
          (Engine.Sim.schedule_at sim 0.001 (fun () -> Topology.detach f.topo f.h4 f.l4));
        Engine.Sim.run sim;
        Alcotest.(check int) "missed" 0 !hits);
    Alcotest.test_case "byte accounting per link" `Quick (fun () ->
        let sim, f, net = make_net () in
        let p = Packet.make ~src:Addr.loopback ~dst:Addr.all_nodes (data ~bytes:500) in
        Network.transmit net ~from:f.a ~link:f.l2 Network.To_all p;
        Network.transmit net ~from:f.a ~link:f.l2 Network.To_all p;
        Engine.Sim.run sim;
        let stats = Network.link_stats net f.l2 in
        Alcotest.(check int) "packets" 2 stats.Network.packets;
        Alcotest.(check int) "bytes include headers" (2 * 540) stats.Network.bytes;
        Alcotest.(check int) "data bytes" 1000 stats.Network.data_bytes;
        let total = Network.total_stats net in
        Alcotest.(check int) "total packets" 2 total.Network.packets;
        Network.reset_stats net;
        Alcotest.(check int) "reset" 0 (Network.link_stats net f.l2).Network.packets);
    Alcotest.test_case "address claims: replace and owner-only release" `Quick (fun () ->
        let _, f, net = make_net () in
        let addr = Addr.of_string "2001:db8:4::10" in
        Network.claim_address net f.h4 ~link:f.l4 addr;
        Alcotest.(check bool) "host owns" true
          (Network.resolve net ~link:f.l4 addr = Some f.h4);
        (* Home agent takes over (proxy). *)
        Network.claim_address net f.d ~link:f.l4 addr;
        Alcotest.(check bool) "router owns" true
          (Network.resolve net ~link:f.l4 addr = Some f.d);
        (* The host's release must not evict the router's claim. *)
        Network.release_address net f.h4 ~link:f.l4 addr;
        Alcotest.(check bool) "router still owns" true
          (Network.resolve net ~link:f.l4 addr = Some f.d);
        Network.release_address net f.d ~link:f.l4 addr;
        Alcotest.(check bool) "gone" true (Network.resolve net ~link:f.l4 addr = None));
    Alcotest.test_case "addresses_of lists a node's claims" `Quick (fun () ->
        let _, f, net = make_net () in
        Network.claim_address net f.d ~link:f.l4 (Addr.of_string "2001:db8:4::1");
        Network.claim_address net f.d ~link:f.l5 (Addr.of_string "2001:db8:5::1");
        Alcotest.(check int) "two claims" 2 (List.length (Network.addresses_of net f.d)));
    Alcotest.test_case "transmit observers see every packet" `Quick (fun () ->
        let sim, f, net = make_net () in
        let seen = ref 0 in
        Network.add_transmit_observer net (fun _ _ -> incr seen);
        Network.add_transmit_observer net (fun _ _ -> incr seen);
        let p = Packet.make ~src:Addr.loopback ~dst:Addr.all_nodes (data ~bytes:64) in
        Network.transmit net ~from:f.a ~link:f.l2 Network.To_all p;
        Engine.Sim.run sim;
        Alcotest.(check int) "both observers fired" 2 !seen)
  ]

(* ---- properties over random topologies ---- *)

let gen_topo_seed = QCheck.Gen.int_bound 10_000

let routing_properties =
  let reachability =
    QCheck.Test.make ~name:"random connected tree: every link reachable from every router"
      ~count:50
      (QCheck.make gen_topo_seed)
      (fun seed ->
        let rng = Engine.Rng.create seed in
        let topo = Topology.create () in
        let n = 2 + Engine.Rng.int rng 8 in
        let links =
          Array.init n (fun i ->
              Topology.add_link topo ~name:(Printf.sprintf "l%d" i)
                ~prefix:(Prefix.of_string (Printf.sprintf "2001:db8:%d::/64" (i + 1)))
                ())
        in
        let routers =
          Array.init n (fun i -> Topology.add_node topo ~name:(Printf.sprintf "r%d" i)
              ~kind:Topology.Router)
        in
        (* Router i owns link i and also attaches to the link of a
           random earlier router: a connected tree. *)
        Array.iteri (fun i r -> Topology.attach topo r links.(i)) routers;
        for i = 1 to n - 1 do
          Topology.attach topo routers.(i) links.(Engine.Rng.int rng i)
        done;
        let r = Routing.create topo in
        Array.for_all
          (fun from ->
            Array.for_all
              (fun link -> Routing.distance_to_link r ~from link <> None)
              links)
          routers)
  in
  let forward_progress =
    QCheck.Test.make
      ~name:"random tree: following next hops reaches the destination link" ~count:50
      (QCheck.make gen_topo_seed)
      (fun seed ->
        let rng = Engine.Rng.create seed in
        let topo = Topology.create () in
        let n = 2 + Engine.Rng.int rng 8 in
        let links =
          Array.init n (fun i ->
              Topology.add_link topo ~name:(Printf.sprintf "l%d" i)
                ~prefix:(Prefix.of_string (Printf.sprintf "2001:db8:%d::/64" (i + 1)))
                ())
        in
        let routers =
          Array.init n (fun i -> Topology.add_node topo ~name:(Printf.sprintf "r%d" i)
              ~kind:Topology.Router)
        in
        Array.iteri (fun i r -> Topology.attach topo r links.(i)) routers;
        for i = 1 to n - 1 do
          Topology.attach topo routers.(i) links.(Engine.Rng.int rng i)
        done;
        let r = Routing.create topo in
        let dst_link = links.(Engine.Rng.int rng n) in
        let dst = Prefix.append_interface_id (Topology.link_prefix topo dst_link) 4242L in
        let rec walk at steps =
          if steps > 2 * n then false
          else
            match Routing.decide r ~at ~dst with
            | Routing.Deliver_on_link l -> Link_id.equal l dst_link
            | Routing.Forward { next_hop; _ } -> walk next_hop (steps + 1)
            | Routing.Unreachable -> false
        in
        Array.for_all (fun from -> walk from 0) routers)
  in
  List.map QCheck_alcotest.to_alcotest [ reachability; forward_progress ]

let () =
  Alcotest.run "net"
    [ ("topology", topology_tests);
      ("routing", routing_tests @ routing_properties);
      ("network", network_tests)
    ]
