test/test_mipv6.mli:
