test/test_ipv6.ml: Addr Alcotest Bytes Char Codec Format Hexdump Ipv6 List Mld_message Nd_message Option Packet Pim_message Prefix QCheck QCheck_alcotest String
