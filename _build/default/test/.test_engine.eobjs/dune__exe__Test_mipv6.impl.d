test/test_mipv6.ml: Addr Alcotest Engine Ipv6 List Mipv6 Packet QCheck QCheck_alcotest
