test/test_net.ml: Addr Alcotest Array Engine Format Ids Int64 Ipv6 List Net Network Option Packet Prefix Printf QCheck QCheck_alcotest Routing String Topology
