test/test_workload.ml: Alcotest Array Engine Host_stack List Mmcast Net Option QCheck QCheck_alcotest Scenario Traffic Workload
