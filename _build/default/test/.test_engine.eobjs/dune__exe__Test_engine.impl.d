test/test_engine.ml: Alcotest Array Engine Event_queue Float Format Fun List Option QCheck QCheck_alcotest Rng Sim Stats String Time Timer Trace
