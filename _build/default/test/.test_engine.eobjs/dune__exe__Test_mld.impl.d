test/test_mld.ml: Addr Alcotest Engine Hashtbl Ipv6 List Mld Mld_message Packet Printf QCheck QCheck_alcotest
