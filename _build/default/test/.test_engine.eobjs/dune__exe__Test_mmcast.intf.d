test/test_mmcast.mli:
