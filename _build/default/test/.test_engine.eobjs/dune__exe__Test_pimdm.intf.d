test/test_pimdm.mli:
