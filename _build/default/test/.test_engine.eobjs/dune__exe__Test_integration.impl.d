test/test_integration.ml: Alcotest Approach Comparison Engine Host_stack Ipv6 List Metrics Mipv6 Mld Mmcast Pimdm Router_stack Scenario Tree
