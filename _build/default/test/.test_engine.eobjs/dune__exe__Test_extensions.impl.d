test/test_extensions.ml: Addr Alcotest Approach Bytes Codec Host_stack Ipv6 List Metrics Mipv6 Mmcast Nd_message Net Packet Pim_message Pimdm Prefix Printf Router_stack Scenario Traffic Workload
