test/test_mld.mli:
