test/test_pimdm.ml: Addr Alcotest Engine Hashtbl Int Ipv6 List Packet Pim_message Pimdm QCheck QCheck_alcotest
