(* Unit tests for the Mobile IPv6 binding cache, mobile node state
   machine and tunnel helpers. *)

open Ipv6

let home = Addr.of_string "2001:db8:4::10"
let coa1 = Addr.of_string "2001:db8:6::10"
let coa2 = Addr.of_string "2001:db8:1::10"
let ha = Addr.of_string "2001:db8:4::1"
let group = Addr.of_string "ff0e::1:1"
let group2 = Addr.of_string "ff0e::2:2"

let bu ?(sequence = 1) ?(lifetime_s = 256) ?(care_of = coa1) ?(groups = []) () =
  { Packet.sequence;
    lifetime_s;
    home_registration = true;
    care_of;
    sub_options =
      (match groups with
       | [] -> []
       | gs -> [ Packet.Multicast_group_list gs ]) }

type cache_harness = {
  sim : Engine.Sim.t;
  cache : Mipv6.Binding_cache.t;
  events :
    [ `Added of Addr.t | `Refreshed of Addr.t | `Removed of Addr.t | `Expiring of Addr.t ]
    list
    ref;
}

let make_cache () =
  let sim = Engine.Sim.create () in
  let events = ref [] in
  let cache =
    Mipv6.Binding_cache.create sim
      { Mipv6.Binding_cache.added =
          (fun e -> events := `Added e.Mipv6.Binding_cache.home :: !events);
        refreshed =
          (fun ~previous:_ e -> events := `Refreshed e.Mipv6.Binding_cache.home :: !events);
        removed = (fun e -> events := `Removed e.Mipv6.Binding_cache.home :: !events);
        expiring = (fun e -> events := `Expiring e.Mipv6.Binding_cache.home :: !events) }
  in
  { sim; cache; events }

let cache_tests =
  [ Alcotest.test_case "registration creates a binding" `Quick (fun () ->
        let h = make_cache () in
        (match Mipv6.Binding_cache.process_update h.cache ~home (bu ()) with
         | Ok entry ->
           Alcotest.(check bool) "care-of" true
             (Addr.equal entry.Mipv6.Binding_cache.care_of coa1);
           Alcotest.(check (float 1e-9)) "expires at lifetime" 256.0
             entry.Mipv6.Binding_cache.expires_at
         | Error s -> Alcotest.failf "rejected with %d" s);
        Alcotest.(check int) "size" 1 (Mipv6.Binding_cache.size h.cache);
        Alcotest.(check bool) "added event" true (!(h.events) = [ `Added home ]));
    Alcotest.test_case "lookup" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ()));
        Alcotest.(check bool) "hit" true (Mipv6.Binding_cache.lookup h.cache home <> None);
        Alcotest.(check bool) "miss" true (Mipv6.Binding_cache.lookup h.cache coa1 = None));
    Alcotest.test_case "refresh updates care-of and notifies" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ~sequence:1 ()));
        ignore
          (Mipv6.Binding_cache.process_update h.cache ~home
             (bu ~sequence:2 ~care_of:coa2 ()));
        (match Mipv6.Binding_cache.lookup h.cache home with
         | Some e ->
           Alcotest.(check bool) "new coa" true (Addr.equal e.Mipv6.Binding_cache.care_of coa2)
         | None -> Alcotest.fail "binding lost");
        Alcotest.(check bool) "refreshed event" true
          (List.mem (`Refreshed home) !(h.events)));
    Alcotest.test_case "stale sequence rejected" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ~sequence:5 ()));
        (match Mipv6.Binding_cache.process_update h.cache ~home (bu ~sequence:3 ~care_of:coa2 ()) with
         | Error s ->
           Alcotest.(check int) "sequence status" Mipv6.Binding_cache.status_sequence_out_of_window s
         | Ok _ -> Alcotest.fail "stale update accepted");
        match Mipv6.Binding_cache.lookup h.cache home with
        | Some e ->
          Alcotest.(check bool) "coa unchanged" true
            (Addr.equal e.Mipv6.Binding_cache.care_of coa1)
        | None -> Alcotest.fail "binding lost");
    Alcotest.test_case "binding expires after its lifetime" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ~lifetime_s:100 ()));
        Engine.Sim.run ~until:99.0 h.sim;
        Alcotest.(check int) "still there" 1 (Mipv6.Binding_cache.size h.cache);
        Engine.Sim.run ~until:101.0 h.sim;
        Alcotest.(check int) "expired" 0 (Mipv6.Binding_cache.size h.cache);
        Alcotest.(check bool) "removed event" true (List.mem (`Removed home) !(h.events)));
    Alcotest.test_case "refresh extends the lifetime" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ~lifetime_s:100 ()));
        ignore
          (Engine.Sim.schedule_at h.sim 80.0 (fun () ->
               ignore
                 (Mipv6.Binding_cache.process_update h.cache ~home
                    (bu ~sequence:2 ~lifetime_s:100 ()))));
        Engine.Sim.run ~until:150.0 h.sim;
        Alcotest.(check int) "alive at 150" 1 (Mipv6.Binding_cache.size h.cache));
    Alcotest.test_case "zero lifetime deregisters" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ()));
        ignore
          (Mipv6.Binding_cache.process_update h.cache ~home (bu ~sequence:2 ~lifetime_s:0 ()));
        Alcotest.(check int) "gone" 0 (Mipv6.Binding_cache.size h.cache);
        Alcotest.(check bool) "removed event" true (List.mem (`Removed home) !(h.events)));
    Alcotest.test_case "care-of = home deregisters" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ()));
        ignore
          (Mipv6.Binding_cache.process_update h.cache ~home (bu ~sequence:2 ~care_of:home ()));
        Alcotest.(check int) "gone" 0 (Mipv6.Binding_cache.size h.cache));
    Alcotest.test_case "groups from the multicast group list sub-option" `Quick (fun () ->
        let h = make_cache () in
        (match
           Mipv6.Binding_cache.process_update h.cache ~home (bu ~groups:[ group; group2 ] ())
         with
         | Ok entry ->
           Alcotest.(check int) "two groups" 2
             (List.length entry.Mipv6.Binding_cache.groups)
         | Error _ -> Alcotest.fail "rejected");
        (* A refresh without the sub-option clears the list. *)
        match Mipv6.Binding_cache.process_update h.cache ~home (bu ~sequence:2 ()) with
        | Ok entry -> Alcotest.(check int) "cleared" 0 (List.length entry.Mipv6.Binding_cache.groups)
        | Error _ -> Alcotest.fail "refresh rejected");
    Alcotest.test_case "expiring warning fires at 75% of an unrefreshed lifetime" `Quick
      (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ~lifetime_s:100 ()));
        Engine.Sim.run ~until:74.0 h.sim;
        Alcotest.(check bool) "quiet before 75%" false
          (List.mem (`Expiring home) !(h.events));
        Engine.Sim.run ~until:76.0 h.sim;
        Alcotest.(check bool) "warned at 75%" true (List.mem (`Expiring home) !(h.events));
        Alcotest.(check int) "binding still alive" 1 (Mipv6.Binding_cache.size h.cache));
    Alcotest.test_case "no expiring warning when refreshed in time" `Quick (fun () ->
        let h = make_cache () in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ~lifetime_s:100 ()));
        ignore
          (Engine.Sim.schedule_at h.sim 50.0 (fun () ->
               ignore
                 (Mipv6.Binding_cache.process_update h.cache ~home
                    (bu ~sequence:2 ~lifetime_s:100 ()))));
        Engine.Sim.run ~until:100.0 h.sim;
        Alcotest.(check bool) "no warning" false (List.mem (`Expiring home) !(h.events)));
    Alcotest.test_case "entries are sorted by home address" `Quick (fun () ->
        let h = make_cache () in
        let home2 = Addr.of_string "2001:db8:4::11" in
        ignore (Mipv6.Binding_cache.process_update h.cache ~home:home2 (bu ()));
        ignore (Mipv6.Binding_cache.process_update h.cache ~home (bu ()));
        let homes =
          List.map (fun e -> e.Mipv6.Binding_cache.home) (Mipv6.Binding_cache.entries h.cache)
        in
        Alcotest.(check bool) "sorted" true (homes = List.sort Addr.compare homes))
  ]

(* ---- mobile node ---- *)

type mn_harness = {
  mn_sim : Engine.Sim.t;
  mn_sent : Packet.t list ref;
  mn : Mipv6.Mobile_node.t;
}

let make_mn ?(config = Mipv6.Mipv6_config.default) () =
  let sim = Engine.Sim.create () in
  let sent = ref [] in
  let env =
    { Mipv6.Mobile_node.sim;
      trace = Engine.Trace.create ~enabled:false sim;
      config;
      send = (fun p -> sent := p :: !sent);
      label = "mn" }
  in
  { mn_sim = sim; mn_sent = sent; mn = Mipv6.Mobile_node.create env ~home_address:home ~home_agent:ha }

let binding_updates h =
  List.rev (List.filter_map (fun p -> Packet.find_binding_update p) !(h.mn_sent))

let ack h ?(status = 0) sequence =
  Mipv6.Mobile_node.handle_ack h.mn
    { Packet.status; ack_sequence = sequence; ack_lifetime_s = 256 }

let mobile_node_tests =
  [ Alcotest.test_case "attach_foreign sends a home registration" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        (match binding_updates h with
         | [ bu ] ->
           Alcotest.(check bool) "H bit" true bu.Packet.home_registration;
           Alcotest.(check bool) "care-of" true (Addr.equal bu.Packet.care_of coa1);
           Alcotest.(check int) "lifetime" 256 bu.Packet.lifetime_s
         | l -> Alcotest.failf "expected one binding update, got %d" (List.length l));
        (* The packet itself: src = care-of, dst = HA, home address option. *)
        (match !(h.mn_sent) with
         | [ p ] ->
           Alcotest.(check bool) "src is coa" true (Addr.equal p.Packet.src coa1);
           Alcotest.(check bool) "dst is ha" true (Addr.equal p.Packet.dst ha);
           Alcotest.(check bool) "home address option" true
             (Packet.find_home_address p = Some home)
         | _ -> Alcotest.fail "expected one packet");
        Alcotest.(check bool) "care_of exposed" true
          (Mipv6.Mobile_node.care_of h.mn = Some coa1));
    Alcotest.test_case "sequence numbers increase across updates" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        ack h (Mipv6.Mobile_node.sequence h.mn);
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa2;
        match binding_updates h with
        | [ a; b ] -> Alcotest.(check bool) "monotone" true (b.Packet.sequence > a.Packet.sequence)
        | _ -> Alcotest.fail "expected two updates");
    Alcotest.test_case "retransmits with backoff until acknowledged" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        Alcotest.(check bool) "not yet registered" false (Mipv6.Mobile_node.is_registered h.mn);
        (* 1 s, then 2 s, then 4 s backoff: by t=7.5 there are 4 sends. *)
        Engine.Sim.run ~until:7.5 h.mn_sim;
        Alcotest.(check int) "retransmissions" 4 (List.length (binding_updates h));
        ack h (Mipv6.Mobile_node.sequence h.mn);
        Alcotest.(check bool) "registered" true (Mipv6.Mobile_node.is_registered h.mn);
        let sent = List.length (binding_updates h) in
        Engine.Sim.run ~until:60.0 h.mn_sim;
        Alcotest.(check int) "quiet after ack" sent (List.length (binding_updates h)));
    Alcotest.test_case "ack with wrong sequence is ignored" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        ack h (Mipv6.Mobile_node.sequence h.mn - 1);
        Alcotest.(check bool) "still unregistered" false
          (Mipv6.Mobile_node.is_registered h.mn));
    Alcotest.test_case "rejection ack does not register" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        ack h ~status:141 (Mipv6.Mobile_node.sequence h.mn);
        Alcotest.(check bool) "not registered" false (Mipv6.Mobile_node.is_registered h.mn));
    Alcotest.test_case "periodic refresh before the lifetime expires" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        ack h (Mipv6.Mobile_node.sequence h.mn);
        (* Refresh at 128 s (0.5 * 256); ack each refresh. *)
        ignore
          (Engine.Sim.schedule_at h.mn_sim 129.0 (fun () ->
               ack h (Mipv6.Mobile_node.sequence h.mn)));
        Engine.Sim.run ~until:130.0 h.mn_sim;
        Alcotest.(check int) "refresh sent" 2 (List.length (binding_updates h));
        Engine.Sim.run ~until:258.0 h.mn_sim;
        Alcotest.(check bool) "second refresh" true (List.length (binding_updates h) >= 3));
    Alcotest.test_case "groups ride in the registration" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.set_advertised_groups ~notify:false h.mn [ group; group2 ];
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        (match binding_updates h with
         | [ bu ] -> (
           match bu.Packet.sub_options with
           | [ Packet.Multicast_group_list gs ] ->
             Alcotest.(check int) "both groups" 2 (List.length gs)
           | _ -> Alcotest.fail "expected the multicast group list sub-option")
         | _ -> Alcotest.fail "expected one update"));
    Alcotest.test_case "changing groups away from home refreshes immediately" `Quick
      (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        ack h (Mipv6.Mobile_node.sequence h.mn);
        Mipv6.Mobile_node.set_advertised_groups h.mn [ group ];
        Alcotest.(check int) "second update" 2 (List.length (binding_updates h));
        (* Same list again: no extra update. *)
        Mipv6.Mobile_node.set_advertised_groups h.mn [ group ];
        Alcotest.(check int) "unchanged list is quiet" 2 (List.length (binding_updates h)));
    Alcotest.test_case "set groups at home sends nothing" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.set_advertised_groups h.mn [ group ];
        Alcotest.(check int) "quiet" 0 (List.length !(h.mn_sent)));
    Alcotest.test_case "attach_home deregisters" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        ack h (Mipv6.Mobile_node.sequence h.mn);
        Mipv6.Mobile_node.attach_home h.mn;
        (match binding_updates h with
         | [ _; dereg ] ->
           Alcotest.(check int) "zero lifetime" 0 dereg.Packet.lifetime_s;
           Alcotest.(check bool) "care-of = home" true (Addr.equal dereg.Packet.care_of home)
         | _ -> Alcotest.fail "expected registration + deregistration");
        Alcotest.(check bool) "at home" true (Mipv6.Mobile_node.care_of h.mn = None);
        let n = List.length (binding_updates h) in
        Engine.Sim.run ~until:500.0 h.mn_sim;
        Alcotest.(check int) "no refreshes at home" n (List.length (binding_updates h)));
    Alcotest.test_case "attach_home when already home is silent" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_home h.mn;
        Alcotest.(check int) "nothing sent" 0 (List.length !(h.mn_sent)));
    Alcotest.test_case "refresh_now re-registers when away, no-op at home" `Quick (fun () ->
        let h = make_mn () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        ack h (Mipv6.Mobile_node.sequence h.mn);
        let before = List.length (binding_updates h) in
        Mipv6.Mobile_node.refresh_now h.mn;
        Alcotest.(check int) "one more update" (before + 1)
          (List.length (binding_updates h));
        Mipv6.Mobile_node.attach_home h.mn;
        let at_home = List.length (binding_updates h) in
        Mipv6.Mobile_node.refresh_now h.mn;
        Alcotest.(check int) "no-op at home" at_home (List.length (binding_updates h)));
    Alcotest.test_case "no-ack configuration counts as registered" `Quick (fun () ->
        let config = { Mipv6.Mipv6_config.default with request_ack = false } in
        let h = make_mn ~config () in
        Mipv6.Mobile_node.attach_foreign h.mn ~care_of:coa1;
        Alcotest.(check bool) "registered without ack" true
          (Mipv6.Mobile_node.is_registered h.mn);
        Engine.Sim.run ~until:10.0 h.mn_sim;
        Alcotest.(check int) "no retransmissions" 1 (List.length (binding_updates h)))
  ]

let tunnel_tests =
  [ Alcotest.test_case "ha -> mobile encapsulation" `Quick (fun () ->
        let inner = Packet.make ~src:coa2 ~dst:home Packet.Empty in
        let outer = Mipv6.Tunnel.home_agent_to_mobile ~home_agent:ha ~care_of:coa1 inner in
        Alcotest.(check bool) "outer src" true (Addr.equal outer.Packet.src ha);
        Alcotest.(check bool) "outer dst" true (Addr.equal outer.Packet.dst coa1);
        Alcotest.(check bool) "inner preserved" true
          (match Packet.decapsulate outer with
           | Some p -> Packet.equal p inner
           | None -> false));
    Alcotest.test_case "reverse tunnel keeps home address inside" `Quick (fun () ->
        let inner =
          Packet.make ~src:home ~dst:group (Packet.Data { stream_id = 1; seq = 1; bytes = 100 })
        in
        let outer = Mipv6.Tunnel.mobile_to_home_agent ~care_of:coa1 ~home_agent:ha inner in
        Alcotest.(check bool) "outer src is coa" true (Addr.equal outer.Packet.src coa1);
        match Packet.decapsulate outer with
        | Some p -> Alcotest.(check bool) "inner src is home" true (Addr.equal p.Packet.src home)
        | None -> Alcotest.fail "not a tunnel");
    Alcotest.test_case "overhead accounting" `Quick (fun () ->
        let inner = Packet.make ~src:home ~dst:group Packet.Empty in
        Alcotest.(check int) "plain" 0 (Mipv6.Tunnel.overhead_bytes inner);
        let once = Mipv6.Tunnel.mobile_to_home_agent ~care_of:coa1 ~home_agent:ha inner in
        Alcotest.(check int) "one level" 40 (Mipv6.Tunnel.overhead_bytes once);
        let twice = Mipv6.Tunnel.home_agent_to_mobile ~home_agent:ha ~care_of:coa1 once in
        Alcotest.(check int) "two levels" 80 (Mipv6.Tunnel.overhead_bytes twice))
  ]

let properties =
  let cache_sequence_monotone =
    QCheck.Test.make ~name:"cache accepts only non-decreasing sequences" ~count:200
      QCheck.(list (int_bound 100))
      (fun seqs ->
        let h = make_cache () in
        let accepted =
          List.filter
            (fun seq ->
              match
                Mipv6.Binding_cache.process_update h.cache ~home (bu ~sequence:seq ())
              with
              | Ok _ -> true
              | Error _ -> false)
            seqs
        in
        (* Accepted sequence numbers must be non-decreasing. *)
        let rec sorted = function
          | a :: (b :: _ as rest) -> a <= b && sorted rest
          | [ _ ] | [] -> true
        in
        sorted accepted)
  in
  [ QCheck_alcotest.to_alcotest cache_sequence_monotone ]

let () =
  Alcotest.run "mipv6"
    [ ("binding cache", cache_tests @ properties);
      ("mobile node", mobile_node_tests);
      ("tunnel", tunnel_tests)
    ]
