(* Tests for the extension features: ND messages on the wire, link
   loss injection, router-advertisement-based movement detection, and
   home-agent redundancy with failover (the paper's cited further
   work). *)

open Ipv6
open Mmcast

let group = Scenario.group

(* ---- ND codec ---- *)

let nd_codec_tests =
  let roundtrip name p =
    Alcotest.test_case name `Quick (fun () ->
        let wire = Codec.encode p in
        Alcotest.(check int) "size = wire length" (Packet.size p) (Bytes.length wire);
        match Codec.decode wire with
        | Ok decoded -> Alcotest.(check bool) "round trip" true (Packet.equal p decoded)
        | Error e -> Alcotest.failf "decode failed: %s" e)
  in
  [ roundtrip "router advertisement"
      (Packet.make ~hop_limit:1
         ~src:(Addr.of_string "fe80::1")
         ~dst:Addr.all_nodes
         (Packet.Nd
            (Nd_message.Router_advertisement
               { prefix = Prefix.of_string "2001:db8:6::/64";
                 router_lifetime_s = 1800;
                 interval_ms = 1000 })));
    roundtrip "home agent heartbeat"
      (Packet.make ~hop_limit:1
         ~src:(Addr.of_string "2001:db8:4::1")
         ~dst:Addr.all_routers
         (Packet.Nd (Nd_message.Home_agent_heartbeat { priority = 3; sequence = 77 })));
    Alcotest.test_case "ra size is 48 bytes of ICMPv6" `Quick (fun () ->
        let m =
          Nd_message.Router_advertisement
            { prefix = Prefix.of_string "2001:db8:1::/64";
              router_lifetime_s = 60;
              interval_ms = 500 }
        in
        Alcotest.(check int) "48" 48 (Nd_message.size m))
  ]

(* ---- loss injection ---- *)

let loss_tests =
  [ Alcotest.test_case "loss rate bounds checked" `Quick (fun () ->
        let s = Scenario.paper_figure1 Scenario.default_spec in
        match Net.Network.set_loss_rate s.Scenario.net (Scenario.link s "L1") 1.5 with
        | _ -> Alcotest.fail "accepted rate > 1"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "full loss blocks delivery, zero loss restores it" `Quick (fun () ->
        let s = Scenario.paper_figure1 Scenario.default_spec in
        Traffic.at s 5.0 (fun () -> Scenario.subscribe_receivers s group);
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:30.0 ~until:120.0
             ~interval:0.5 ~bytes:500);
        (* Kill L2 from t=50 to t=80. *)
        Traffic.at s 50.0 (fun () ->
            Net.Network.set_loss_rate s.Scenario.net (Scenario.link s "L2") 1.0);
        let r2_rx_at_loss = ref 0 in
        Traffic.at s 51.0 (fun () ->
            r2_rx_at_loss := Host_stack.received_count (Scenario.host s "R2") ~group);
        Traffic.at s 79.0 (fun () ->
            Alcotest.(check int) "nothing delivered during blackout" !r2_rx_at_loss
              (Host_stack.received_count (Scenario.host s "R2") ~group));
        Traffic.at s 80.0 (fun () ->
            Net.Network.set_loss_rate s.Scenario.net (Scenario.link s "L2") 0.0);
        Scenario.run_until s 120.0;
        Alcotest.(check bool) "losses counted" true (Net.Network.losses s.Scenario.net > 0);
        Alcotest.(check bool) "delivery resumed" true
          (Host_stack.received_count (Scenario.host s "R2") ~group > !r2_rx_at_loss));
    Alcotest.test_case "binding updates survive a lossy path (retransmission)" `Quick
      (fun () ->
        let spec = { Scenario.default_spec with approach = Approach.bidirectional_tunnel } in
        let s = Scenario.paper_figure1 spec in
        (* 40% loss on the foreign link: the first BU or its Ack may
           vanish; exponential-backoff retransmission must converge. *)
        Net.Network.set_loss_rate s.Scenario.net (Scenario.link s "L6") 0.4;
        let r3 = Scenario.host s "R3" in
        Traffic.at s 5.0 (fun () -> Host_stack.subscribe r3 group);
        Traffic.at s 10.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        Scenario.run_until s 60.0;
        Alcotest.(check bool) "registered despite loss" true
          (Mipv6.Mobile_node.is_registered (Host_stack.mobile r3));
        Alcotest.(check bool) "took retransmissions" true
          (Mipv6.Mobile_node.binding_updates_sent (Host_stack.mobile r3) >= 1));
    Alcotest.test_case "mld robustness: membership survives moderate loss" `Quick (fun () ->
        let s = Scenario.paper_figure1 Scenario.default_spec in
        Net.Network.set_loss_rate s.Scenario.net (Scenario.link s "L4") 0.3;
        Traffic.at s 5.0 (fun () -> Scenario.subscribe_receivers s group);
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:30.0 ~until:590.0
             ~interval:1.0 ~bytes:200);
        Scenario.run_until s 560.0;
        let before = Host_stack.received_count (Scenario.host s "R3") ~group in
        Scenario.run_until s 590.0;
        (* Reports answer the periodic queries; with robustness 2 the
           membership must never lapse, so R3 keeps receiving. *)
        Alcotest.(check bool) "still receiving at t=590" true
          (Host_stack.received_count (Scenario.host s "R3") ~group > before))
  ]

let binding_request_tests =
  [ Alcotest.test_case "home agent probes a lazy mobile node" `Quick (fun () ->
        (* A mobile node that would only refresh at 99% of the lifetime
           (well past the home agent's 75% warning) survives because
           the Binding Request triggers an immediate re-registration. *)
        let mipv6 = { Mipv6.Mipv6_config.default with refresh_fraction = 0.99 } in
        let spec =
          { Scenario.default_spec with
            approach = Approach.bidirectional_tunnel;
            mipv6 }
        in
        let s = Scenario.paper_figure1 spec in
        let r3 = Scenario.host s "R3" in
        let d = Scenario.router s "D" in
        Traffic.at s 5.0 (fun () -> Host_stack.subscribe r3 group);
        Traffic.at s 10.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        (* 75% of 256 s = 192 s: the probe lands around t = 202. *)
        Scenario.run_until s 230.0;
        Alcotest.(check bool) "binding survived" true
          (Router_stack.binding_for d (Host_stack.home_address r3) <> None);
        Alcotest.(check bool) "probe-triggered update happened" true
          (Mipv6.Mobile_node.binding_updates_sent (Host_stack.mobile r3) >= 2);
        (* And it keeps surviving over several lifetimes. *)
        Scenario.run_until s 800.0;
        Alcotest.(check bool) "still bound at t=800" true
          (Router_stack.binding_for d (Host_stack.home_address r3) <> None))
  ]

(* ---- router-advertisement movement detection ---- *)

let ra_tests =
  [ Alcotest.test_case "movement detected by the first advertisement" `Quick (fun () ->
        let spec = { Scenario.default_spec with ra_interval = Some 0.5 } in
        let s = Scenario.paper_figure1 spec in
        let r3 = Scenario.host s "R3" in
        Traffic.at s 5.0 (fun () -> Scenario.subscribe_receivers s group);
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:10.0 ~until:100.0
             ~interval:0.25 ~bytes:200);
        Traffic.at s 40.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        (* Shortly after the move, still undetected (stale state). *)
        Traffic.at s 40.001 (fun () ->
            Alcotest.(check bool) "stale right after handoff" true (Host_stack.at_home r3));
        (* Within ~1.2 advertisement intervals the care-of address is
           configured. *)
        Traffic.at s 41.5 (fun () ->
            Alcotest.(check bool) "detected via RA" false (Host_stack.at_home r3);
            Alcotest.(check bool) "coa on L6" true
              (Prefix.contains (Prefix.of_string "2001:db8:6::/64")
                 (Host_stack.current_source_address r3)));
        Scenario.run_until s 100.0;
        (match Metrics.join_delay r3 ~group with
         | Some d -> Alcotest.(check bool) "join delay ~ RA interval" true (d < 3.0)
         | None -> Alcotest.fail "no data after move");
        Alcotest.(check bool) "receiving on L6" true
          (Host_stack.received_count r3 ~group > 100));
    Alcotest.test_case "advertisements are classified as ND signalling" `Quick (fun () ->
        let spec = { Scenario.default_spec with ra_interval = Some 1.0 } in
        let s = Scenario.paper_figure1 spec in
        let metrics = Metrics.attach s.Scenario.net in
        Scenario.run_until s 30.0;
        Alcotest.(check bool) "nd bytes counted" true
          (Metrics.bytes metrics Metrics.Nd_signalling > 0);
        Alcotest.(check bool) "ras in the census" true
          ((Metrics.control_counts metrics).Metrics.router_advertisements > 50));
    Alcotest.test_case "returning home detected by the home advertisement" `Quick (fun () ->
        let spec = { Scenario.default_spec with ra_interval = Some 0.5 } in
        let s = Scenario.paper_figure1 spec in
        let r3 = Scenario.host s "R3" in
        Traffic.at s 10.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L6"));
        Traffic.at s 30.0 (fun () -> Host_stack.move_to r3 (Scenario.link s "L4"));
        Scenario.run_until s 35.0;
        Alcotest.(check bool) "back home" true (Host_stack.at_home r3);
        (* Deregistration happened. *)
        Alcotest.(check bool) "binding gone" true
          (Router_stack.binding_for (Scenario.router s "D") (Host_stack.home_address r3)
           = None))
  ]

(* ---- home-agent redundancy ---- *)

(* A home link L1 served by two home agents, a backbone, and a foreign
   link; the mobile host MH is homed on L1, the sender streams from
   L2. *)
let failover_scenario ?(spec = Scenario.default_spec) () =
  let spec = { spec with Scenario.ha_failover = true; approach = Approach.bidirectional_tunnel } in
  Scenario.build spec
    ~links:
      [ ("L1", "2001:db8:1::/64"); ("LB", "2001:db8:b::/64"); ("L2", "2001:db8:2::/64") ]
    ~routers:
      [ ("HA1", [ "L1"; "LB" ], [ "L1" ]);
        ("HA2", [ "L1"; "LB" ], [ "L1" ]);
        ("R", [ "LB"; "L2" ], [ "L2" ]) ]
    ~hosts:[ ("S", "L2"); ("MH", "L1") ]

let failover_tests =
  [ Alcotest.test_case "lowest router becomes the active agent" `Quick (fun () ->
        let s = failover_scenario () in
        Scenario.run_until s 5.0;
        let l1 = Scenario.link s "L1" in
        Alcotest.(check bool) "HA1 active" true
          (Router_stack.is_active_home_agent (Scenario.router s "HA1") l1);
        Alcotest.(check bool) "HA2 standby" false
          (Router_stack.is_active_home_agent (Scenario.router s "HA2") l1);
        (* The service address resolves to the active agent. *)
        let service =
          Router_stack.ha_service_address (Net.Network.topology s.Scenario.net) l1
        in
        Alcotest.(check bool) "service address owned by HA1" true
          (Net.Network.resolve s.Scenario.net ~link:l1 service
           = Some (Router_stack.node_id (Scenario.router s "HA1"))));
    Alcotest.test_case "bindings replicate to the standby" `Quick (fun () ->
        let s = failover_scenario () in
        let mh = Scenario.host s "MH" in
        Traffic.at s 5.0 (fun () -> Host_stack.subscribe mh group);
        Traffic.at s 10.0 (fun () -> Host_stack.move_to mh (Scenario.link s "L2"));
        Scenario.run_until s 20.0;
        let home = Host_stack.home_address mh in
        (match Router_stack.binding_for (Scenario.router s "HA1") home with
         | Some _ -> ()
         | None -> Alcotest.fail "active has no binding");
        match Router_stack.binding_for (Scenario.router s "HA2") home with
        | Some entry ->
          Alcotest.(check bool) "standby knows the care-of address" true
            (Addr.equal entry.Mipv6.Binding_cache.care_of
               (Host_stack.current_source_address mh));
          Alcotest.(check int) "groups replicated" 1
            (List.length entry.Mipv6.Binding_cache.groups)
        | None -> Alcotest.fail "standby has no binding");
    Alcotest.test_case "delivery survives the active agent crashing" `Quick (fun () ->
        let s = failover_scenario () in
        let mh = Scenario.host s "MH" in
        let ha1 = Scenario.router s "HA1" in
        Traffic.at s 5.0 (fun () -> Host_stack.subscribe mh group);
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:20.0 ~until:200.0
             ~interval:0.5 ~bytes:400);
        Traffic.at s 30.0 (fun () -> Host_stack.move_to mh (Scenario.link s "L2"));
        (* Tunnel established via HA1; crash it at t=60. *)
        let rx_at_crash = ref 0 in
        Traffic.at s 60.0 (fun () ->
            Alcotest.(check bool) "receiving before crash" true
              (Host_stack.received_count mh ~group > 10);
            rx_at_crash := Host_stack.received_count mh ~group;
            Router_stack.fail ha1);
        (* Failover completes within ~3.5 heartbeat intervals; give the
           takeover and the tunnel a little time. *)
        Traffic.at s 75.0 (fun () ->
            Alcotest.(check bool) "HA2 took over" true
              (Router_stack.is_active_home_agent (Scenario.router s "HA2")
                 (Scenario.link s "L1")));
        Scenario.run_until s 120.0;
        Alcotest.(check bool) "delivery resumed through HA2" true
          (Host_stack.received_count mh ~group > !rx_at_crash + 50);
        Alcotest.(check bool) "HA1 reported failed" true (Router_stack.is_failed ha1));
    Alcotest.test_case "fail-back when the primary recovers" `Quick (fun () ->
        let s = failover_scenario () in
        let mh = Scenario.host s "MH" in
        let ha1 = Scenario.router s "HA1" in
        let ha2 = Scenario.router s "HA2" in
        let l1 = Scenario.link s "L1" in
        Traffic.at s 5.0 (fun () -> Host_stack.subscribe mh group);
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:20.0 ~until:300.0
             ~interval:0.5 ~bytes:400);
        Traffic.at s 30.0 (fun () -> Host_stack.move_to mh (Scenario.link s "L2"));
        Traffic.at s 60.0 (fun () -> Router_stack.fail ha1);
        Traffic.at s 120.0 (fun () -> Router_stack.recover ha1);
        let rx_after_failback = ref 0 in
        Traffic.at s 140.0 (fun () ->
            Alcotest.(check bool) "HA1 active again" true
              (Router_stack.is_active_home_agent ha1 l1);
            Alcotest.(check bool) "HA2 standby again" false
              (Router_stack.is_active_home_agent ha2 l1);
            (* The recovered primary got the bindings back via sync. *)
            Alcotest.(check bool) "binding restored at HA1" true
              (Router_stack.binding_for ha1 (Host_stack.home_address mh) <> None);
            rx_after_failback := Host_stack.received_count mh ~group);
        Scenario.run_until s 200.0;
        Alcotest.(check bool) "delivery continues after fail-back" true
          (Host_stack.received_count mh ~group > !rx_after_failback + 50));
    Alcotest.test_case "crashed router black-holes until takeover" `Quick (fun () ->
        let s = failover_scenario () in
        let mh = Scenario.host s "MH" in
        let ha1 = Scenario.router s "HA1" in
        Traffic.at s 5.0 (fun () -> Host_stack.subscribe mh group);
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:20.0 ~until:100.0
             ~interval:0.1 ~bytes:200);
        Traffic.at s 30.0 (fun () -> Host_stack.move_to mh (Scenario.link s "L2"));
        Traffic.at s 60.0 (fun () -> Router_stack.fail ha1);
        Scenario.run_until s 100.0;
        (* Some datagrams are lost in the takeover gap: the sender sent
           more than MH received. *)
        let sent = Host_stack.data_sent (Scenario.host s "S") in
        let got = Host_stack.received_count mh ~group in
        Alcotest.(check bool) "some takeover loss" true (got < sent);
        Alcotest.(check bool) "but bounded (a few seconds at 10 Hz)" true
          (sent - got < 120))
  ]

(* ---- PIM-DM State Refresh ---- *)

(* A pruned router-to-router branch: router B has nothing behind it and
   prunes; without State Refresh the branch re-floods every prune
   holdtime. *)
let pruned_branch_scenario ~state_refresh =
  let pim =
    { Pimdm.Pim_config.default with
      state_refresh_interval = (if state_refresh then Some 60.0 else None) }
  in
  let spec = { Scenario.default_spec with Scenario.pim } in
  Scenario.build spec
    ~links:
      [ ("L1", "2001:db8:1::/64"); ("L2", "2001:db8:2::/64"); ("L3", "2001:db8:3::/64") ]
    ~routers:[ ("A", [ "L1"; "L2" ], [ "L1" ]); ("B", [ "L2"; "L3" ], []) ]
    ~hosts:[ ("S", "L1"); ("R1", "L1") ]

let run_pruned_branch ~state_refresh =
  let s = pruned_branch_scenario ~state_refresh in
  let m = Metrics.attach s.Scenario.net in
  Traffic.at s 5.0 (fun () -> Scenario.subscribe_receivers s group);
  ignore
    (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:30.0 ~until:700.0 ~interval:0.5
       ~bytes:500);
  Scenario.run_until s 700.0;
  (Metrics.data_bytes_on m (Scenario.link s "L2"),
   (Metrics.control_counts m).Metrics.state_refreshes,
   Host_stack.received_count (Scenario.host s "R1") ~group)

let state_refresh_tests =
  [ Alcotest.test_case "codec round trip" `Quick (fun () ->
        let p =
          Packet.make ~hop_limit:1
            ~src:(Addr.of_string "fe80::1")
            ~dst:Addr.all_pim_routers
            (Packet.Pim
               (Pim_message.State_refresh
                  { refresh_source = Addr.of_string "2001:db8:1::10";
                    refresh_group = group;
                    interval_s = 60;
                    prune_indicator = false }))
        in
        let wire = Codec.encode p in
        Alcotest.(check int) "size" (Packet.size p) (Bytes.length wire);
        match Codec.decode wire with
        | Ok decoded -> Alcotest.(check bool) "equal" true (Packet.equal p decoded)
        | Error e -> Alcotest.failf "decode: %s" e);
    Alcotest.test_case "suppresses periodic re-floods on pruned branches" `Quick (fun () ->
        let without, refreshes_without, rx_without = run_pruned_branch ~state_refresh:false in
        let with_, refreshes_with, rx_with = run_pruned_branch ~state_refresh:true in
        Alcotest.(check int) "no refreshes when disabled" 0 refreshes_without;
        Alcotest.(check bool) "refreshes flow when enabled" true (refreshes_with >= 5);
        (* Re-floods every 210 s make the pruned branch carry several
           times the traffic of the single initial flood. *)
        Alcotest.(check bool) "re-flood traffic without the extension" true
          (without > 3 * with_);
        (* Delivery to the real receiver is unaffected either way. *)
        Alcotest.(check bool) "receiver unaffected" true
          (abs (rx_without - rx_with) <= 2));
    Alcotest.test_case "state survives on refresh alone (no data timeout)" `Quick (fun () ->
        let s = pruned_branch_scenario ~state_refresh:true in
        Traffic.at s 5.0 (fun () -> Scenario.subscribe_receivers s group);
        ignore
          (Traffic.cbr s (Scenario.host s "S") ~group ~from_t:30.0 ~until:600.0
             ~interval:0.5 ~bytes:500);
        Scenario.run_until s 600.0;
        (* B has been pruned (receiving no data) for ~570 s, far beyond
           the 210 s data timeout, yet the refreshes kept its (S,G)
           state alive. *)
        let b = Scenario.router s "B" in
        Alcotest.(check int) "B still has the (S,G) entry" 1
          (List.length (Pimdm.Pim_router.entries (Router_stack.pim b))))
  ]

(* All features enabled at once: RA detection, failover, state refresh,
   loss injection, tunnel-MLD signalling, random churn. *)
let soak_tests =
  [ Alcotest.test_case "everything-on soak: delivery survives" `Slow (fun () ->
        let pim =
          { Pimdm.Pim_config.default with state_refresh_interval = Some 60.0 }
        in
        let spec =
          { Scenario.default_spec with
            approach = Approach.bidirectional_tunnel;
            ha_mode = Router_stack.Ha_pim_tunnel_mld;
            ra_interval = Some 1.0;
            ha_failover = true;
            pim;
            seed = 3 }
        in
        let s =
          Scenario.build spec
            ~links:
              [ ("L1", "2001:db8:1::/64"); ("LB", "2001:db8:b::/64");
                ("L2", "2001:db8:2::/64"); ("L3", "2001:db8:3::/64") ]
            ~routers:
              [ ("HA1", [ "L1"; "LB" ], [ "L1" ]);
                ("HA2", [ "L1"; "LB" ], [ "L1" ]);
                ("R2", [ "LB"; "L2" ], [ "L2" ]);
                ("R3", [ "LB"; "L3" ], [ "L3" ]) ]
            ~hosts:[ ("SRC", "L2"); ("MH", "L1") ]
        in
        (* Mild loss on the backbone. *)
        Net.Network.set_loss_rate s.Scenario.net (Scenario.link s "LB") 0.02;
        let mh = Scenario.host s "MH" in
        Traffic.at s 5.0 (fun () -> Host_stack.subscribe mh group);
        ignore
          (Traffic.cbr s (Scenario.host s "SRC") ~group ~from_t:20.0 ~until:580.0
             ~interval:0.25 ~bytes:600);
        (* MH roams between its home link and both foreign links. *)
        Workload.Mobility.round_robin s mh ~links:[ "L3"; "L2"; "L1" ] ~period:90.0
          ~from_t:60.0 ~until:500.0;
        (* The active home agent crashes mid-run and comes back. *)
        Traffic.at s 200.0 (fun () -> Router_stack.fail (Scenario.router s "HA1"));
        Traffic.at s 320.0 (fun () -> Router_stack.recover (Scenario.router s "HA1"));
        Scenario.run_until s 600.0;
        let sent = Host_stack.data_sent (Scenario.host s "SRC") in
        let got = Host_stack.received_count mh ~group in
        (* The shortfall is two bounded recovery windows, not an
           unbounded outage: a lost Join override costs at most one
           State-Refresh interval (60 s, vs. the 210 s prune holdtime
           without the extension), and a lost tunnel-MLD Report costs
           one startup-query interval (~31 s). *)
        Alcotest.(check bool)
          (Printf.sprintf "delivered %d of %d under churn+crash+loss" got sent)
          true
          (float_of_int got > 0.78 *. float_of_int sent);
        (* The run ends in a stable state: MH back home, no binding. *)
        Alcotest.(check bool) "stable at the end" true
          (Host_stack.received_count mh ~group > 0))
  ]

let () =
  Alcotest.run "extensions"
    [ ("nd codec", nd_codec_tests);
      ("state refresh", state_refresh_tests);
      ("binding request", binding_request_tests);
      ("loss injection", loss_tests);
      ("ra detection", ra_tests);
      ("ha failover", failover_tests);
      ("soak", soak_tests)
    ]
