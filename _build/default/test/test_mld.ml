(* Unit tests for the MLD state machines, driven through a fake
   environment that captures every emitted packet. *)

open Ipv6

let group = Addr.of_string "ff0e::1:1"
let group2 = Addr.of_string "ff0e::2:2"

type harness = {
  sim : Engine.Sim.t;
  sent : Packet.t list ref;  (* newest first *)
  env : Mld.Mld_env.t;
}

let make_harness ?(config = Mld.Mld_config.default) ?(address = "fe80::1") () =
  let sim = Engine.Sim.create () in
  let sent = ref [] in
  let env =
    { Mld.Mld_env.sim;
      trace = Engine.Trace.create ~enabled:false sim;
      rng = Engine.Rng.create 7;
      config;
      local_address = (fun () -> Addr.of_string address);
      send = (fun p -> sent := p :: !sent);
      label = "test" }
  in
  { sim; sent; env }

let sent_messages h =
  List.rev_map
    (fun p ->
      match p.Packet.payload with
      | Packet.Mld m -> (Engine.Sim.now h.sim, m)
      | Packet.Data _ | Packet.Pim _ | Packet.Nd _ | Packet.Encapsulated _ | Packet.Empty ->
        Alcotest.fail "MLD env sent a non-MLD packet")
    !(h.sent)

let count_queries h =
  List.length
    (List.filter
       (fun p ->
         match p.Packet.payload with
         | Packet.Mld (Mld_message.Query _) -> true
         | _ -> false)
       !(h.sent))

let count_reports h =
  List.length
    (List.filter
       (fun p ->
         match p.Packet.payload with
         | Packet.Mld (Mld_message.Report _) -> true
         | _ -> false)
       !(h.sent))

let count_dones h =
  List.length
    (List.filter
       (fun p ->
         match p.Packet.payload with
         | Packet.Mld (Mld_message.Done _) -> true
         | _ -> false)
       !(h.sent))

let noop_callbacks =
  { Mld.Mld_router.listener_added = (fun _ -> ()); listener_removed = (fun _ -> ()) }

let recording_callbacks events =
  { Mld.Mld_router.listener_added = (fun g -> events := `Added g :: !events);
    listener_removed = (fun g -> events := `Removed g :: !events) }

let report ~from _h router =
  Mld.Mld_router.handle router ~src:(Addr.of_string from) (Mld_message.Report { group })

let config_tests =
  [ Alcotest.test_case "TMLI formula" `Quick (fun () ->
        let c = Mld.Mld_config.default in
        Alcotest.(check (float 1e-9)) "2*125+10" 260.0
          (Mld.Mld_config.multicast_listener_interval c);
        Alcotest.(check (float 1e-9)) "OQP" 255.0
          (Mld.Mld_config.other_querier_present_interval c);
        Alcotest.(check (float 1e-9)) "startup" 31.25 (Mld.Mld_config.startup_query_interval c));
    Alcotest.test_case "with_query_interval scales TMLI" `Quick (fun () ->
        let c = Mld.Mld_config.with_query_interval 30.0 Mld.Mld_config.default in
        Alcotest.(check (float 1e-9)) "2*30+10" 70.0
          (Mld.Mld_config.multicast_listener_interval c));
    Alcotest.test_case "TQuery below TRespDel rejected" `Quick (fun () ->
        match Mld.Mld_config.with_query_interval 5.0 Mld.Mld_config.default with
        | _ -> Alcotest.fail "expected rejection"
        | exception Invalid_argument _ -> ())
  ]

let router_tests =
  [ Alcotest.test_case "startup sends a general query immediately" `Quick (fun () ->
        let h = make_harness () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        Alcotest.(check int) "one query at t=0" 1 (count_queries h);
        match sent_messages h with
        | [ (_, Mld_message.Query { group = None; max_response_delay_ms }) ] ->
          Alcotest.(check int) "TRespDel in ms" 10000 max_response_delay_ms
        | _ -> Alcotest.fail "expected a general query");
    Alcotest.test_case "startup queries come faster, then periodic" `Quick (fun () ->
        let h = make_harness () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        (* Second (startup) query at TQuery/4 = 31.25 s, then 125 s cadence. *)
        Engine.Sim.run ~until:32.0 h.sim;
        Alcotest.(check int) "startup query" 2 (count_queries h);
        Engine.Sim.run ~until:200.0 h.sim;
        Alcotest.(check int) "next periodic" 3 (count_queries h);
        ignore r);
    Alcotest.test_case "report creates membership and notifies" `Quick (fun () ->
        let h = make_harness () in
        let events = ref [] in
        let r = Mld.Mld_router.create h.env (recording_callbacks events) in
        Mld.Mld_router.start r;
        report ~from:"fe80::99" h r;
        Alcotest.(check bool) "has listeners" true (Mld.Mld_router.has_listeners r group);
        Alcotest.(check bool) "added callback" true (!events = [ `Added group ]);
        (* A second report does not re-notify. *)
        report ~from:"fe80::98" h r;
        Alcotest.(check int) "still one event" 1 (List.length !events));
    Alcotest.test_case "membership expires after TMLI" `Quick (fun () ->
        let h = make_harness () in
        let events = ref [] in
        let r = Mld.Mld_router.create h.env (recording_callbacks events) in
        Mld.Mld_router.start r;
        report ~from:"fe80::99" h r;
        (match Mld.Mld_router.listener_deadline r group with
         | Some deadline -> Alcotest.(check (float 1e-6)) "deadline at TMLI" 260.0 deadline
         | None -> Alcotest.fail "no deadline");
        Engine.Sim.run ~until:261.0 h.sim;
        Alcotest.(check bool) "expired" false (Mld.Mld_router.has_listeners r group);
        Alcotest.(check bool) "removed callback" true
          (List.mem (`Removed group) !events));
    Alcotest.test_case "repeated reports keep membership alive" `Quick (fun () ->
        let h = make_harness () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        report ~from:"fe80::99" h r;
        (* Refresh every 100 s: membership must survive well past TMLI. *)
        for k = 1 to 5 do
          ignore
            (Engine.Sim.schedule_at h.sim (100.0 *. float_of_int k) (fun () ->
                 report ~from:"fe80::99" h r))
        done;
        Engine.Sim.run ~until:550.0 h.sim;
        Alcotest.(check bool) "alive at 550" true (Mld.Mld_router.has_listeners r group));
    Alcotest.test_case "done triggers specific queries and fast expiry" `Quick (fun () ->
        let h = make_harness () in
        let events = ref [] in
        let r = Mld.Mld_router.create h.env (recording_callbacks events) in
        Mld.Mld_router.start r;
        report ~from:"fe80::99" h r;
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::99") (Mld_message.Done { group });
        (* Last-listener queries: robustness (2) group-specific queries. *)
        Engine.Sim.run ~until:5.0 h.sim;
        let specific =
          List.filter
            (fun (_, m) ->
              match m with
              | Mld_message.Query { group = Some g; _ } -> Addr.equal g group
              | _ -> false)
            (sent_messages h)
        in
        Alcotest.(check int) "two specific queries" 2 (List.length specific);
        Alcotest.(check bool) "gone after ~2 s" false (Mld.Mld_router.has_listeners r group);
        Alcotest.(check bool) "removal notified" true (List.mem (`Removed group) !events));
    Alcotest.test_case "done answered by remaining member keeps group" `Quick (fun () ->
        let h = make_harness () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        report ~from:"fe80::99" h r;
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::99") (Mld_message.Done { group });
        (* Another host answers the specific query before it expires. *)
        ignore (Engine.Sim.schedule_at h.sim 0.5 (fun () -> report ~from:"fe80::98" h r));
        Engine.Sim.run ~until:10.0 h.sim;
        Alcotest.(check bool) "still a member" true (Mld.Mld_router.has_listeners r group));
    Alcotest.test_case "querier election: lower address wins" `Quick (fun () ->
        let h = make_harness ~address:"fe80::5" () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        Alcotest.(check bool) "initially querier" true (Mld.Mld_router.is_querier r);
        (* Query from a higher address: we stay querier. *)
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::7")
          (Mld_message.Query { group = None; max_response_delay_ms = 10000 });
        Alcotest.(check bool) "still querier" true (Mld.Mld_router.is_querier r);
        (* Query from a lower address: we defer. *)
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::2")
          (Mld_message.Query { group = None; max_response_delay_ms = 10000 });
        Alcotest.(check bool) "deferred" false (Mld.Mld_router.is_querier r));
    Alcotest.test_case "non-querier sends no periodic queries" `Quick (fun () ->
        let h = make_harness ~address:"fe80::5" () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::2")
          (Mld_message.Query { group = None; max_response_delay_ms = 10000 });
        let before = count_queries h in
        (* Keep refreshing the other querier so OQP never expires. *)
        for k = 1 to 3 do
          ignore
            (Engine.Sim.schedule_at h.sim (float_of_int k *. 125.0) (fun () ->
                 Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::2")
                   (Mld_message.Query { group = None; max_response_delay_ms = 10000 })))
        done;
        Engine.Sim.run ~until:400.0 h.sim;
        Alcotest.(check int) "no queries while deferring" before (count_queries h));
    Alcotest.test_case "takes querier role back after OQP expires" `Quick (fun () ->
        let h = make_harness ~address:"fe80::5" () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::2")
          (Mld_message.Query { group = None; max_response_delay_ms = 10000 });
        (* OQP = 255 s with defaults. *)
        Engine.Sim.run ~until:256.0 h.sim;
        Alcotest.(check bool) "querier again" true (Mld.Mld_router.is_querier r));
    Alcotest.test_case "groups listing is sorted" `Quick (fun () ->
        let h = make_harness () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::9") (Mld_message.Report { group = group2 });
        Mld.Mld_router.handle r ~src:(Addr.of_string "fe80::9") (Mld_message.Report { group });
        Alcotest.(check int) "two groups" 2 (List.length (Mld.Mld_router.groups r));
        Alcotest.(check bool) "sorted" true
          (Mld.Mld_router.groups r = List.sort Addr.compare (Mld.Mld_router.groups r)));
    Alcotest.test_case "stop cancels everything" `Quick (fun () ->
        let h = make_harness () in
        let r = Mld.Mld_router.create h.env noop_callbacks in
        Mld.Mld_router.start r;
        report ~from:"fe80::99" h r;
        Mld.Mld_router.stop r;
        Alcotest.(check bool) "no members" false (Mld.Mld_router.has_listeners r group);
        let before = count_queries h in
        Engine.Sim.run ~until:300.0 h.sim;
        Alcotest.(check int) "no more queries" before (count_queries h))
  ]

let host_tests =
  [ Alcotest.test_case "join sends unsolicited reports" `Quick (fun () ->
        let h = make_harness () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group;
        Alcotest.(check bool) "joined" true (Mld.Mld_host.is_joined host group);
        Alcotest.(check int) "first report immediate" 1 (count_reports h);
        (* Second unsolicited report after the unsolicited interval. *)
        Engine.Sim.run ~until:11.0 h.sim;
        Alcotest.(check int) "second report" 2 (count_reports h));
    Alcotest.test_case "join with zero unsolicited reports stays silent" `Quick (fun () ->
        let config = { Mld.Mld_config.default with unsolicited_report_count = 0 } in
        let h = make_harness ~config () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group;
        Engine.Sim.run ~until:30.0 h.sim;
        Alcotest.(check int) "no report until queried" 0 (count_reports h);
        Mld.Mld_host.handle host ~src:(Addr.of_string "fe80::1")
          (Mld_message.Query { group = None; max_response_delay_ms = 10000 });
        Engine.Sim.run ~until:45.0 h.sim;
        Alcotest.(check int) "answers the query" 1 (count_reports h));
    Alcotest.test_case "response delay is within the advertised maximum" `Quick (fun () ->
        let config = { Mld.Mld_config.default with unsolicited_report_count = 0 } in
        let h = make_harness ~config () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group;
        Mld.Mld_host.handle host ~src:(Addr.of_string "fe80::1")
          (Mld_message.Query { group = None; max_response_delay_ms = 4000 });
        (match Mld.Mld_host.pending_response_at host group with
         | Some at -> Alcotest.(check bool) "within 4 s" true (at <= 4.0)
         | None -> Alcotest.fail "no response scheduled");
        Engine.Sim.run ~until:5.0 h.sim;
        Alcotest.(check int) "reported" 1 (count_reports h));
    Alcotest.test_case "report suppression" `Quick (fun () ->
        let config = { Mld.Mld_config.default with unsolicited_report_count = 0 } in
        let h = make_harness ~config () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group;
        Mld.Mld_host.handle host ~src:(Addr.of_string "fe80::1")
          (Mld_message.Query { group = None; max_response_delay_ms = 10000 });
        (* Another listener answers first. *)
        Mld.Mld_host.handle host ~src:(Addr.of_string "fe80::9") (Mld_message.Report { group });
        Engine.Sim.run ~until:15.0 h.sim;
        Alcotest.(check int) "own report suppressed" 0 (count_reports h));
    Alcotest.test_case "group-specific query only affects that group" `Quick (fun () ->
        let config = { Mld.Mld_config.default with unsolicited_report_count = 0 } in
        let h = make_harness ~config () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group;
        Mld.Mld_host.join host group2;
        Mld.Mld_host.handle host ~src:(Addr.of_string "fe80::1")
          (Mld_message.Query { group = Some group; max_response_delay_ms = 1000 });
        Engine.Sim.run ~until:2.0 h.sim;
        Alcotest.(check int) "one report" 1 (count_reports h);
        match sent_messages h with
        | [ (_, Mld_message.Report { group = g }) ] ->
          Alcotest.(check bool) "for the queried group" true (Addr.equal g group)
        | _ -> Alcotest.fail "expected exactly one report");
    Alcotest.test_case "leave sends done only when last reporter" `Quick (fun () ->
        let h = make_harness () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group;
        (* Our unsolicited report makes us the last reporter. *)
        Mld.Mld_host.leave host group;
        Alcotest.(check int) "done sent" 1 (count_dones h);
        Alcotest.(check bool) "left" false (Mld.Mld_host.is_joined host group);
        (* Now join again but let someone else report last. *)
        Mld.Mld_host.join host group2;
        Mld.Mld_host.handle host ~src:(Addr.of_string "fe80::9")
          (Mld_message.Report { group = group2 });
        Mld.Mld_host.leave host group2;
        Alcotest.(check int) "no second done" 1 (count_dones h));
    Alcotest.test_case "stop is silent (host left the link)" `Quick (fun () ->
        let h = make_harness () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group;
        let reports = count_reports h in
        Mld.Mld_host.stop host;
        Engine.Sim.run ~until:30.0 h.sim;
        Alcotest.(check int) "nothing after stop" reports (count_reports h);
        Alcotest.(check int) "no done" 0 (count_dones h));
    Alcotest.test_case "joined listing" `Quick (fun () ->
        let h = make_harness () in
        let host = Mld.Mld_host.create h.env in
        Mld.Mld_host.join host group2;
        Mld.Mld_host.join host group;
        Alcotest.(check int) "two" 2 (List.length (Mld.Mld_host.joined host));
        Mld.Mld_host.leave host group;
        Alcotest.(check int) "one" 1 (List.length (Mld.Mld_host.joined host)))
  ]

(* ---- a one-link mini-network: router + N hosts wired together ---- *)

let wire_link ~hosts:host_count =
  let sim = Engine.Sim.create () in
  let trace = Engine.Trace.create ~enabled:false sim in
  let delay = 0.001 in
  let inboxes : (Packet.t -> unit) list ref = ref [] in
  let make_env ~address label =
    { Mld.Mld_env.sim;
      trace;
      rng = Engine.Rng.create (Hashtbl.hash label);
      config = Mld.Mld_config.default;
      local_address = (fun () -> address);
      send =
        (fun p ->
          (* Deliver to everyone else after the link delay. *)
          let senders = !inboxes in
          ignore
            (Engine.Sim.schedule_after sim delay (fun () ->
                 List.iter (fun deliver -> deliver p) senders)));
      label }
  in
  let router_env = make_env ~address:(Addr.of_string "fe80::1") "router" in
  let events = ref [] in
  let router = Mld.Mld_router.create router_env (recording_callbacks events) in
  let hosts =
    List.init host_count (fun i ->
        let address = Addr.of_string (Printf.sprintf "fe80::1%d" (i + 2)) in
        (address, Mld.Mld_host.create (make_env ~address (Printf.sprintf "h%d" i))))
  in
  (* Wire inboxes: every endpoint sees every packet except its own
     (the harness does not model self-reception, like the real link
     layer). *)
  let router_inbox (p : Packet.t) =
    match p.Packet.payload with
    | Packet.Mld m ->
      if not (Addr.equal p.Packet.src (Addr.of_string "fe80::1")) then
        Mld.Mld_router.handle router ~src:p.Packet.src m
    | _ -> ()
  in
  let host_inbox (address, host) (p : Packet.t) =
    match p.Packet.payload with
    | Packet.Mld m ->
      if not (Addr.equal p.Packet.src address) then Mld.Mld_host.handle host ~src:p.Packet.src m
    | _ -> ()
  in
  inboxes := router_inbox :: List.map host_inbox hosts;
  Mld.Mld_router.start router;
  (sim, router, List.map snd hosts, events)

let link_tests =
  [ Alcotest.test_case "suppression: one report per query cycle for many hosts" `Quick
      (fun () ->
        let sim, router, hosts, _ = wire_link ~hosts:8 in
        List.iter (fun h -> Mld.Mld_host.join h group) hosts;
        Engine.Sim.run ~until:600.0 sim;
        Alcotest.(check bool) "membership held" true
          (Mld.Mld_router.has_listeners router group));
    Alcotest.test_case "membership expires after all hosts silently leave" `Quick (fun () ->
        let sim, router, hosts, events = wire_link ~hosts:3 in
        List.iter (fun h -> Mld.Mld_host.join h group) hosts;
        Engine.Sim.run ~until:50.0 sim;
        (* Hosts vanish without Done (moved away, like mobile hosts). *)
        List.iter Mld.Mld_host.stop hosts;
        (* TMLI = 260 s after the last refresh. *)
        Engine.Sim.run ~until:330.0 sim;
        Alcotest.(check bool) "membership timed out" false
          (Mld.Mld_router.has_listeners router group);
        Alcotest.(check bool) "removal callback fired" true
          (List.mem (`Removed group) !events));
    Alcotest.test_case "done from last host removes membership fast" `Quick (fun () ->
        let sim, router, hosts, _ = wire_link ~hosts:1 in
        List.iter (fun h -> Mld.Mld_host.join h group) hosts;
        Engine.Sim.run ~until:10.0 sim;
        Alcotest.(check bool) "member" true (Mld.Mld_router.has_listeners router group);
        List.iter (fun h -> Mld.Mld_host.leave h group) hosts;
        Engine.Sim.run ~until:20.0 sim;
        Alcotest.(check bool) "removed within seconds" false
          (Mld.Mld_router.has_listeners router group))
  ]

let properties =
  let membership_matches_joins =
    QCheck.Test.make ~name:"router membership matches surviving joined hosts" ~count:30
      QCheck.(pair (int_range 1 6) (int_range 0 5))
      (fun (host_count, leavers) ->
        let leavers = min leavers host_count in
        let sim, router, hosts, _ = wire_link ~hosts:host_count in
        List.iter (fun h -> Mld.Mld_host.join h group) hosts;
        Engine.Sim.run ~until:30.0 sim;
        List.iteri (fun i h -> if i < leavers then Mld.Mld_host.leave h group) hosts;
        Engine.Sim.run ~until:700.0 sim;
        Mld.Mld_router.has_listeners router group = (leavers < host_count))
  in
  [ QCheck_alcotest.to_alcotest membership_matches_joins ]

let () =
  Alcotest.run "mld"
    [ ("config", config_tests);
      ("router", router_tests);
      ("host", host_tests);
      ("link", link_tests @ properties)
    ]
